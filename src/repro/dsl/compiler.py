"""Compiler: DSL AST → :class:`~repro.core.Assembly`, and back to source.

Semantic rules enforced here (on top of :meth:`Assembly.validate`):

- shape names must be registered in the component library;
- shape parameters must match the shape factory's signature;
- the reserved parameters ``size`` and ``weight`` configure the component
  itself, everything else is passed to the shape;
- a fixed component size must be feasible for its shape (``RPR105``);
- selectors must parse (``lowest_id``, ``highest_id``, ``hub``, ``rank(K)``);
- links must reference declared components and ports (``RPR101``/``RPR102``)
  and be unique, non-self connections (``RPR103``/``RPR104``);
- the declared node budget must cover every component (``RPR106``);
- the assignment rule, when given, must be known.

Every check emits a coded, located :class:`~repro.diagnostics.Diagnostic`.
By default the first error is raised as a :class:`DslSemanticError` (the
historical fail-fast contract); callers that pass ``diagnostics=[...]`` —
notably ``repro lint`` — get *all* findings collected into that list
instead, with compilation continuing best-effort and returning ``None``
when the program is too broken to produce an assembly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.diagnostics import ERROR, Diagnostic
from repro.errors import AssemblyError, ConfigurationError, DslSemanticError, TopologyError
from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.link import LinkSpec, PortRef
from repro.core.port import PortSpec, make_selector
from repro.core.roles import make_assignment
from repro.dsl.ast import ComponentDecl, TopologyDecl
from repro.dsl.parser import parse_source
from repro.shapes.registry import make_shape

#: Catch-all code for parameter/name/selector/assignment semantic errors.
GENERIC_CODE = "RPR100"


class DiagnosticSink:
    """Where semantic findings go: raised (default) or collected.

    The compiler reports every violation through :meth:`error`; with no
    backing list the first report raises :class:`DslSemanticError` exactly
    as the compiler always has, so existing callers see no difference.
    """

    def __init__(
        self,
        collected: Optional[List[Diagnostic]] = None,
        file: Optional[str] = None,
    ):
        self.collected = collected
        self.file = file

    @property
    def collecting(self) -> bool:
        return self.collected is not None

    def error(self, message: str, line: int, column: int, code: str = GENERIC_CODE) -> None:
        if self.collected is None:
            raise DslSemanticError(message, line, column, code=code)
        self.collected.append(
            Diagnostic(
                code=code,
                severity=ERROR,
                message=message,
                file=self.file,
                line=line,
                column=column,
            )
        )


def _located(message: str, line: int, column: int, code: str = GENERIC_CODE) -> DslSemanticError:
    return DslSemanticError(message, line, column, code=code)


def _expand_name(base: str, index: int) -> str:
    return f"{base}{index}"


def _compile_component(decl: ComponentDecl, sink: DiagnosticSink) -> Optional[ComponentSpec]:
    """Lower one component declaration, or ``None`` if it had errors."""
    size = None
    weight = 1.0
    shape_params: Dict[str, Any] = {}
    failed = False
    for param in decl.params:
        if param.name == "size":
            if not isinstance(param.value, int) or isinstance(param.value, bool):
                sink.error(
                    f"component {decl.name!r}: size must be an integer",
                    param.line,
                    param.column,
                )
                failed = True
                continue
            size = param.value
        elif param.name == "weight":
            if not isinstance(param.value, (int, float)) or isinstance(
                param.value, bool
            ):
                sink.error(
                    f"component {decl.name!r}: weight must be numeric",
                    param.line,
                    param.column,
                )
                failed = True
                continue
            weight = float(param.value)
        else:
            shape_params[param.name] = param.value
    try:
        shape = make_shape(decl.shape, **shape_params)
    except ConfigurationError as exc:
        sink.error(str(exc), decl.line, decl.column)
        return None
    ports = []
    for port in decl.ports:
        try:
            selector = make_selector(port.selector)
        except AssemblyError as exc:
            sink.error(str(exc), port.line, port.column)
            failed = True
            continue
        ports.append(PortSpec(port.name, selector))
    if failed:
        return None
    try:
        spec = ComponentSpec(
            name=decl.name, shape=shape, weight=weight, size=size, ports=tuple(ports)
        )
    except AssemblyError as exc:
        sink.error(str(exc), decl.line, decl.column)
        return None
    if spec.size is not None:
        try:
            spec.shape.validate_size(spec.size)
        except TopologyError as exc:
            sink.error(
                f"component {decl.name!r}: {exc}", decl.line, decl.column, code="RPR105"
            )
            return None
    return spec


def _resolve_endpoint(
    component: str,
    index,
    port: str,
    replica_map: Dict[str, list],
    decl,
    sink: DiagnosticSink,
) -> list:
    """Resolve one link endpoint to the list of concrete port refs."""
    if component in replica_map:
        names = replica_map[component]
        if index == "*":
            return [PortRef(name, port) for name in names]
        if index is None:
            sink.error(
                f"{component!r} is replicated ×{len(names)}: address it as "
                f"{component}[i].{port} or fan out with {component}[*].{port}",
                decl.line,
                decl.column,
                code="RPR108",
            )
            return []
        if not 0 <= index < len(names):
            sink.error(
                f"replica index {component}[{index}] out of range "
                f"(0..{len(names) - 1})",
                decl.line,
                decl.column,
                code="RPR108",
            )
            return []
        return [PortRef(names[index], port)]
    if index is not None:
        sink.error(
            f"{component!r} is not replicated; drop the [{index}] index",
            decl.line,
            decl.column,
            code="RPR108",
        )
        return []
    return [PortRef(component, port)]


def _check_link_refs(
    a_ref: PortRef,
    b_ref: PortRef,
    declared_ports: Dict[str, Set[str]],
    decl,
    sink: DiagnosticSink,
) -> bool:
    """Validate one concrete link against the declared components/ports."""
    ok = True
    for ref in (a_ref, b_ref):
        ports = declared_ports.get(ref.component)
        if ports is None:
            sink.error(
                f"link {a_ref} -- {b_ref} references unknown component "
                f"{ref.component!r}",
                decl.line,
                decl.column,
                code="RPR101",
            )
            ok = False
        elif ref.port not in ports:
            sink.error(
                f"link {a_ref} -- {b_ref} references unknown port {ref!s}",
                decl.line,
                decl.column,
                code="RPR102",
            )
            ok = False
    if a_ref == b_ref:
        sink.error(
            f"link endpoints must differ, got {a_ref} twice",
            decl.line,
            decl.column,
            code="RPR104",
        )
        ok = False
    return ok


def compile_ast(
    tree: TopologyDecl,
    diagnostics: Optional[List[Diagnostic]] = None,
    file: Optional[str] = None,
) -> Optional[Assembly]:
    """Lower a parsed topology declaration to a validated assembly.

    Replication sugar is expanded here: ``component shard[4] : …`` becomes
    components ``shard0 .. shard3``; a link endpoint ``shard[*].head`` fans
    the link out to every replica.

    With ``diagnostics`` set to a list, semantic errors are appended to it
    (as coded :class:`~repro.diagnostics.Diagnostic` records, located at
    ``file``) instead of raised, and as much of the program as possible is
    still compiled; the return value is ``None`` whenever any error was
    found. Without it, the first error raises :class:`DslSemanticError`.
    """
    sink = DiagnosticSink(diagnostics, file)
    before = len(diagnostics) if diagnostics is not None else 0
    components: List[ComponentSpec] = []
    #: Component name → its declared port names, including failed components
    #: (so one bad shape parameter does not cascade into bogus unknown-
    #: component errors on every link that references it).
    declared_ports: Dict[str, Set[str]] = {}
    replica_map: Dict[str, list] = {}
    for decl in tree.components:
        expanded = (
            [decl.name]
            if decl.replicas is None
            else [_expand_name(decl.name, index) for index in range(decl.replicas)]
        )
        clash = next(
            (
                name
                for name in dict.fromkeys([decl.name, *expanded])
                if name in declared_ports
            ),
            None,
        )
        if clash is not None:
            sink.error(
                f"duplicate component {clash!r}", decl.line, decl.column, code="RPR107"
            )
            continue
        port_names = {port.name for port in decl.ports}
        if decl.replicas is not None:
            replica_map[decl.name] = expanded
            declared_ports[decl.name] = port_names
        for name in expanded:
            declared_ports[name] = port_names
        spec = _compile_component(decl, sink)
        if spec is None:
            continue
        if decl.replicas is None:
            components.append(spec)
            continue
        for name in expanded:
            components.append(
                ComponentSpec(
                    name=name,
                    shape=spec.shape,
                    weight=spec.weight,
                    size=spec.size,
                    ports=spec.ports,
                )
            )
    if not tree.components:
        sink.error(
            f"assembly {tree.name!r} declares no components",
            tree.line,
            tree.column,
            code="RPR109",
        )
    links: List[LinkSpec] = []
    seen_links: Set[LinkSpec] = set()
    for decl in tree.links:
        a_refs = _resolve_endpoint(
            decl.a_component, decl.a_index, decl.a_port, replica_map, decl, sink
        )
        b_refs = _resolve_endpoint(
            decl.b_component, decl.b_index, decl.b_port, replica_map, decl, sink
        )
        if len(a_refs) > 1 and len(b_refs) > 1:
            sink.error(
                "at most one side of a link may fan out with [*]",
                decl.line,
                decl.column,
                code="RPR108",
            )
            continue
        for a_ref in a_refs:
            for b_ref in b_refs:
                if not _check_link_refs(a_ref, b_ref, declared_ports, decl, sink):
                    continue
                link = LinkSpec(a_ref, b_ref)
                if link in seen_links:
                    sink.error(
                        f"duplicate link {link}", decl.line, decl.column, code="RPR103"
                    )
                    continue
                seen_links.add(link)
                links.append(link)
    assignment = None
    if tree.assign is not None:
        try:
            assignment = make_assignment(tree.assign)
        except AssemblyError as exc:
            sink.error(str(exc), tree.line, tree.column)
    if tree.nodes is not None and components:
        minimum = sum(spec.size or 1 for spec in components)
        if tree.nodes < minimum:
            sink.error(
                f"assembly {tree.name!r} needs at least {minimum} nodes, "
                f"got total_nodes={tree.nodes}",
                tree.line,
                tree.column,
                code="RPR106",
            )
    if sink.collecting and len(diagnostics) > before:
        return None
    try:
        return Assembly(
            name=tree.name,
            components=components,
            links=links,
            assignment=assignment,
            total_nodes=tree.nodes,
        )
    except AssemblyError as exc:
        # Backstop: anything the pre-checks above did not anticipate.
        sink.error(str(exc), tree.line, tree.column)
        return None


def compile_source(
    source: str,
    diagnostics: Optional[List[Diagnostic]] = None,
    file: Optional[str] = None,
) -> Optional[Assembly]:
    """Parse and compile DSL text in one step (same contract as :func:`compile_ast`)."""
    return compile_ast(parse_source(source), diagnostics=diagnostics, file=file)


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def to_source(assembly: Assembly, indent: str = "    ") -> str:
    """Pretty-print an assembly back to DSL text.

    The output re-parses to an equal assembly (round-trip property), which
    makes DSL files a faithful serialization format for topologies built
    with the :class:`~repro.dsl.builder.TopologyBuilder`.
    """
    lines = [f"topology {assembly.name} {{"]
    if assembly.total_nodes is not None:
        lines.append(f"{indent}nodes {assembly.total_nodes}")
    if assembly.assignment.name:
        lines.append(f"{indent}assign {assembly.assignment.name}")
    for spec in assembly.components.values():
        params = []
        if spec.size is not None:
            params.append(f"size = {spec.size}")
        elif spec.weight != 1.0:
            params.append(f"weight = {_format_value(spec.weight)}")
        for name, value in sorted(spec.shape.params().items()):
            params.append(f"{name} = {_format_value(value)}")
        header = f"{indent}component {spec.name} : {spec.shape.name}"
        if params:
            header += f"({', '.join(params)})"
        if spec.ports:
            lines.append(header + " {")
            for port in spec.ports:
                lines.append(f"{indent}{indent}port {port.name} : {port.selector.spec()}")
            lines.append(f"{indent}}}")
        else:
            lines.append(header)
    for link in assembly.links:
        lines.append(f"{indent}link {link.a} -- {link.b}")
    lines.append("}")
    return "\n".join(lines) + "\n"
