"""Recursive-descent parser for the topology DSL.

Grammar (EBNF)::

    topology   = "topology" IDENT "{" clause* "}" EOF
    clause     = component | link | nodes | assign
    component  = "component" IDENT [ "[" INT "]" ] ":" IDENT
                 [ "(" params ")" ] [ block ]
    params     = param { "," param }
    param      = IDENT "=" value
    value      = INT | FLOAT | STRING | IDENT
    block      = "{" port* "}"
    port       = "port" IDENT ":" selector
    selector   = IDENT [ "(" INT ")" ]
    link       = "link" portref "--" portref
    portref    = IDENT [ "[" (INT | "*") "]" ] "." IDENT
    nodes      = "nodes" INT
    assign     = "assign" IDENT

``component NAME[K]`` declares K identically-shaped replicas (expanded to
``NAME0 .. NAME{K-1}``); in links, ``NAME[i].port`` addresses one replica
and ``NAME[*].port`` fans the link out to all of them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import DslSyntaxError
from repro.dsl.ast import ComponentDecl, LinkDecl, Param, PortDecl, TopologyDecl
from repro.dsl.lexer import tokenize
from repro.dsl.tokens import KEYWORDS, Token, TokenType


class Parser:
    """Parses one DSL source into a :class:`TopologyDecl`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> DslSyntaxError:
        token = token or self._peek()
        return DslSyntaxError(message, token.line, token.column)

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise self._error(f"expected {what}, found {token}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word!r}, found {token}")
        return self._advance()

    def _expect_name(self, what: str) -> Token:
        """An IDENT that is not a reserved keyword."""
        token = self._expect(TokenType.IDENT, what)
        if token.value in KEYWORDS:
            raise self._error(f"{token} is a reserved word, expected {what}", token)
        return token

    # -- grammar ------------------------------------------------------------------------

    def parse(self) -> TopologyDecl:
        start = self._expect_keyword("topology")
        name = self._expect_name("a topology name")
        self._expect(TokenType.LBRACE, "'{'")
        components: List[ComponentDecl] = []
        links: List[LinkDecl] = []
        nodes: Optional[int] = None
        assign: Optional[str] = None
        while not self._peek().type is TokenType.RBRACE:
            token = self._peek()
            if token.is_keyword("component"):
                components.append(self._component())
            elif token.is_keyword("link"):
                links.append(self._link())
            elif token.is_keyword("nodes"):
                if nodes is not None:
                    raise self._error("duplicate 'nodes' clause")
                self._advance()
                nodes = int(self._expect(TokenType.INT, "a node count").value)
            elif token.is_keyword("assign"):
                if assign is not None:
                    raise self._error("duplicate 'assign' clause")
                self._advance()
                assign = str(self._expect_name("an assignment rule").value)
            elif token.type is TokenType.EOF:
                raise self._error("unexpected end of input, expected '}'")
            else:
                raise self._error(
                    f"expected component, link, nodes or assign, found {token}"
                )
        self._expect(TokenType.RBRACE, "'}'")
        self._expect(TokenType.EOF, "end of input")
        return TopologyDecl(
            name=str(name.value),
            components=tuple(components),
            links=tuple(links),
            nodes=nodes,
            assign=assign,
            line=start.line,
            column=start.column,
        )

    def _component(self) -> ComponentDecl:
        start = self._expect_keyword("component")
        name = self._expect_name("a component name")
        replicas = None
        if self._peek().type is TokenType.LBRACKET:
            self._advance()
            count = self._expect(TokenType.INT, "a replica count")
            if count.value < 1:
                raise self._error("replica count must be >= 1", count)
            replicas = int(count.value)
            self._expect(TokenType.RBRACKET, "']'")
        self._expect(TokenType.COLON, "':'")
        shape = self._expect_name("a shape name")
        params: Tuple[Param, ...] = ()
        if self._peek().type is TokenType.LPAREN:
            params = self._params()
        ports: Tuple[PortDecl, ...] = ()
        if self._peek().type is TokenType.LBRACE:
            ports = self._port_block()
        return ComponentDecl(
            name=str(name.value),
            shape=str(shape.value),
            params=params,
            ports=ports,
            replicas=replicas,
            line=start.line,
            column=start.column,
        )

    def _params(self) -> Tuple[Param, ...]:
        self._expect(TokenType.LPAREN, "'('")
        params: List[Param] = []
        if self._peek().type is not TokenType.RPAREN:
            while True:
                name = self._expect_name("a parameter name")
                self._expect(TokenType.EQUALS, "'='")
                params.append(
                    Param(
                        name=str(name.value),
                        value=self._value(),
                        line=name.line,
                        column=name.column,
                    )
                )
                if self._peek().type is TokenType.COMMA:
                    self._advance()
                    continue
                break
        self._expect(TokenType.RPAREN, "')'")
        return tuple(params)

    def _value(self):
        token = self._peek()
        if token.type in (TokenType.INT, TokenType.FLOAT, TokenType.STRING):
            return self._advance().value
        if token.type is TokenType.IDENT:
            return self._advance().value  # bare word or boolean
        raise self._error(f"expected a value, found {token}")

    def _port_block(self) -> Tuple[PortDecl, ...]:
        self._expect(TokenType.LBRACE, "'{'")
        ports: List[PortDecl] = []
        while self._peek().is_keyword("port"):
            start = self._advance()
            name = self._expect_name("a port name")
            self._expect(TokenType.COLON, "':'")
            ports.append(
                PortDecl(
                    name=str(name.value),
                    selector=self._selector(),
                    line=start.line,
                    column=start.column,
                )
            )
        self._expect(TokenType.RBRACE, "'}' to close the port block")
        return tuple(ports)

    def _selector(self) -> str:
        name = self._expect_name("a selector rule")
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            argument = self._expect(TokenType.INT, "a selector argument")
            self._expect(TokenType.RPAREN, "')'")
            return f"{name.value}({argument.value})"
        return str(name.value)

    def _link(self) -> LinkDecl:
        start = self._expect_keyword("link")
        a_component, a_index, a_port = self._portref()
        self._expect(TokenType.LINK_ARROW, "'--'")
        b_component, b_index, b_port = self._portref()
        return LinkDecl(
            a_component=a_component,
            a_port=a_port,
            b_component=b_component,
            b_port=b_port,
            a_index=a_index,
            b_index=b_index,
            line=start.line,
            column=start.column,
        )

    def _portref(self) -> Tuple[str, object, str]:
        component = self._expect_name("a component name")
        index: object = None
        if self._peek().type is TokenType.LBRACKET:
            self._advance()
            token = self._peek()
            if token.type is TokenType.STAR:
                self._advance()
                index = "*"
            elif token.type is TokenType.INT:
                self._advance()
                index = int(token.value)
            else:
                raise self._error("expected a replica index or '*'")
            self._expect(TokenType.RBRACKET, "']'")
        self._expect(TokenType.DOT, "'.'")
        port = self._expect_name("a port name")
        return str(component.value), index, str(port.value)


def parse_source(source: str) -> TopologyDecl:
    """Parse DSL text into its AST."""
    return Parser(source).parse()
