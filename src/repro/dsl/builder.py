"""Fluent programmatic construction of assemblies.

The builder is the Python-native twin of the textual DSL — the paper argues
developers should "programmatically manipulate distributed systems as first
class entities", and this is that surface::

    builder = TopologyBuilder("Mongo")
    builder.component("router", "star", size=8).port("hub", "hub")
    for i in range(4):
        builder.component(f"shard{i}", "clique", size=12).port("head", "lowest_id")
        builder.link(("router", "hub"), (f"shard{i}", "head"))
    assembly = builder.nodes(56).build()
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import AssemblyError
from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.link import LinkSpec, PortRef
from repro.core.port import PortSpec, make_selector
from repro.core.roles import AssignmentRule, make_assignment
from repro.shapes.base import Shape
from repro.shapes.registry import make_shape

#: A port endpoint: "component.port" text or a (component, port) pair.
PortEndpoint = Union[str, Tuple[str, str]]


class ComponentBuilder:
    """Builder for one component; returned by :meth:`TopologyBuilder.component`."""

    def __init__(
        self,
        parent: "TopologyBuilder",
        name: str,
        shape: Shape,
        weight: float,
        size: Optional[int],
    ):
        self._parent = parent
        self._name = name
        self._shape = shape
        self._weight = weight
        self._size = size
        self._ports: List[PortSpec] = []

    def port(self, name: str, selector: str = "lowest_id") -> "ComponentBuilder":
        """Declare a port with a selector rule (chainable)."""
        if any(port.name == name for port in self._ports):
            raise AssemblyError(
                f"component {self._name!r}: duplicate port {name!r}"
            )
        self._ports.append(PortSpec(name, make_selector(selector)))
        return self

    def done(self) -> "TopologyBuilder":
        """Return to the topology builder (optional sugar for chaining)."""
        return self._parent

    def _spec(self) -> ComponentSpec:
        return ComponentSpec(
            name=self._name,
            shape=self._shape,
            weight=self._weight,
            size=self._size,
            ports=tuple(self._ports),
        )


class TopologyBuilder:
    """Accumulates components and links, then builds a validated assembly."""

    def __init__(self, name: str):
        self._name = name
        self._components: Dict[str, ComponentBuilder] = {}
        self._links: List[LinkSpec] = []
        self._nodes: Optional[int] = None
        self._assignment: Optional[AssignmentRule] = None

    # -- declarations -----------------------------------------------------------

    def component(
        self,
        name: str,
        shape: Union[str, Shape],
        weight: float = 1.0,
        size: Optional[int] = None,
        **shape_params: Any,
    ) -> ComponentBuilder:
        """Declare a component; returns its :class:`ComponentBuilder`.

        ``shape`` is a registry name (with ``shape_params`` forwarded to the
        factory) or a ready :class:`~repro.shapes.base.Shape` instance.
        """
        if name in self._components:
            raise AssemblyError(f"duplicate component {name!r}")
        if isinstance(shape, str):
            shape = make_shape(shape, **shape_params)
        elif shape_params:
            raise AssemblyError(
                "shape_params are only valid with a shape name, "
                f"not a Shape instance ({shape!r})"
            )
        builder = ComponentBuilder(self, name, shape, weight, size)
        self._components[name] = builder
        return builder

    def replicate(
        self,
        base_name: str,
        count: int,
        shape: Union[str, Shape],
        weight: float = 1.0,
        size: Optional[int] = None,
        ports: Optional[Dict[str, str]] = None,
        **shape_params: Any,
    ) -> List[str]:
        """Declare ``count`` identical components ``base_name0 .. base_nameN``.

        The builder twin of the DSL's ``component NAME[K] : …`` sugar.
        ``ports`` maps port names to selector rules, applied to every
        replica. Returns the expanded component names, handy for linking::

            shards = builder.replicate("shard", 4, "clique", size=18,
                                       ports={"head": "lowest_id"})
            for shard in shards:
                builder.link(("router", "hub"), (shard, "head"))
        """
        if count < 1:
            raise AssemblyError(f"replica count must be >= 1, got {count}")
        names = []
        for index in range(count):
            component = self.component(
                f"{base_name}{index}", shape, weight=weight, size=size,
                **shape_params,
            )
            for port_name, selector in (ports or {}).items():
                component.port(port_name, selector)
            names.append(f"{base_name}{index}")
        return names

    def link(self, a: PortEndpoint, b: PortEndpoint) -> "TopologyBuilder":
        """Declare a link between two ports (``"comp.port"`` or tuples)."""
        self._links.append(LinkSpec(self._ref(a), self._ref(b)))
        return self

    def link_all(self, hub: PortEndpoint, spokes, port: str) -> "TopologyBuilder":
        """Fan a link from ``hub`` out to ``port`` of every named component
        (the builder twin of ``hub -- name[*].port``)."""
        for name in spokes:
            self.link(hub, (name, port))
        return self

    def nodes(self, count: int) -> "TopologyBuilder":
        """Declare the default deployment size (the DSL's ``nodes N``)."""
        self._nodes = count
        return self

    def assign(self, rule: Union[str, AssignmentRule]) -> "TopologyBuilder":
        """Choose the node-assignment rule (``proportional`` or ``hash``)."""
        self._assignment = make_assignment(rule) if isinstance(rule, str) else rule
        return self

    # -- construction ----------------------------------------------------------------

    def build(self) -> Assembly:
        """Validate and return the assembly."""
        return Assembly(
            name=self._name,
            components=[builder._spec() for builder in self._components.values()],
            links=self._links,
            assignment=self._assignment,
            total_nodes=self._nodes,
        )

    # -- internals ----------------------------------------------------------------------

    @staticmethod
    def _ref(endpoint: PortEndpoint) -> PortRef:
        if isinstance(endpoint, str):
            return PortRef.parse(endpoint)
        component, port = endpoint
        return PortRef(component, port)
