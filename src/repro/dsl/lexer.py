"""Hand-written lexer for the topology DSL.

Recognizes identifiers, integer and float literals, double-quoted strings,
punctuation, the ``--`` link arrow, and both ``#`` and ``//`` line comments.
Every token carries its 1-based source position for error reporting.
"""

from __future__ import annotations

from typing import List

from repro.errors import DslSyntaxError
from repro.dsl.tokens import Token, TokenType

_PUNCTUATION = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "*": TokenType.STAR,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
    "=": TokenType.EQUALS,
    ".": TokenType.DOT,
}


class Lexer:
    """Tokenizes one DSL source text."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- character helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        char = self.source[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _error(self, message: str) -> DslSyntaxError:
        return DslSyntaxError(message, self.line, self.column)

    # -- scanning ------------------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Scan the whole source; returns the token list ending with EOF."""
        out: List[Token] = []
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "#" or (char == "/" and self._peek(1) == "/"):
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if char == "-" and self._peek(1) == "-":
                out.append(Token(TokenType.LINK_ARROW, "--", self.line, self.column))
                self._advance()
                self._advance()
                continue
            if char in _PUNCTUATION:
                out.append(Token(_PUNCTUATION[char], char, self.line, self.column))
                self._advance()
                continue
            if char == '"':
                out.append(self._string())
                continue
            if char.isdigit() or (char == "-" and self._peek(1).isdigit()):
                out.append(self._number())
                continue
            if char.isalpha() or char == "_":
                out.append(self._identifier())
                continue
            raise self._error(f"unexpected character {char!r}")
        out.append(Token(TokenType.EOF, None, self.line, self.column))
        return out

    def _string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise DslSyntaxError("unterminated string literal", line, column)
            char = self._advance()
            if char == '"':
                break
            if char == "\n":
                raise DslSyntaxError("newline in string literal", line, column)
            if char == "\\":
                escape = self._advance() if self.pos < len(self.source) else ""
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise DslSyntaxError(
                        f"unknown escape sequence \\{escape}", self.line, self.column
                    )
                chars.append(mapping[escape])
                continue
            chars.append(char)
        return Token(TokenType.STRING, "".join(chars), line, column)

    def _number(self) -> Token:
        line, column = self.line, self.column
        chars: List[str] = []
        if self._peek() == "-":
            chars.append(self._advance())
        is_float = False
        while self.pos < len(self.source):
            char = self._peek()
            if char.isdigit():
                chars.append(self._advance())
            elif char == "." and self._peek(1).isdigit() and not is_float:
                is_float = True
                chars.append(self._advance())
            else:
                break
        text = "".join(chars)
        if is_float:
            return Token(TokenType.FLOAT, float(text), line, column)
        return Token(TokenType.INT, int(text), line, column)

    def _identifier(self) -> Token:
        line, column = self.line, self.column
        chars: List[str] = []
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            chars.append(self._advance())
        word = "".join(chars)
        value: object = word
        if word == "true":
            value = True
        elif word == "false":
            value = False
        token_type = TokenType.IDENT if isinstance(value, str) else TokenType.IDENT
        if isinstance(value, bool):
            # Booleans are represented as IDENT tokens with bool values; the
            # parser treats them as literal values where a value is expected.
            return Token(TokenType.IDENT, value, line, column)
        return Token(token_type, word, line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokens()
