"""Exception hierarchy for the :mod:`repro` framework.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch framework failures with a single ``except`` clause while still being
able to distinguish configuration mistakes, DSL syntax errors, and runtime
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the framework."""


class ConfigurationError(ReproError):
    """An invalid parameter value or an inconsistent configuration object."""


class SimulationError(ReproError):
    """A violation of the simulator's execution model (e.g. stepping a dead node)."""


class TopologyError(ReproError):
    """An assembly or shape that cannot be realized (e.g. empty component)."""


class AssemblyError(TopologyError):
    """An invalid assembly description (unknown ports, dangling links, ...)."""


class DslError(ReproError):
    """Base class for DSL front-end failures."""


class DslSyntaxError(DslError):
    """A lexical or grammatical error in a DSL source text.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DslSemanticError(DslError):
    """A well-formed DSL program that violates a semantic rule."""


class ConvergenceTimeout(ReproError):
    """An experiment did not converge within its round budget."""

    def __init__(self, layer: str, rounds: int):
        super().__init__(f"layer {layer!r} did not converge within {rounds} rounds")
        self.layer = layer
        self.rounds = rounds
