"""Exception hierarchy for the :mod:`repro` framework.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch framework failures with a single ``except`` clause while still being
able to distinguish configuration mistakes, DSL syntax errors, and runtime
problems.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class of every exception raised by the framework.

    Every framework error can carry an optional diagnostic ``code`` (e.g.
    ``RPR105``) identifying the static-analysis rule it corresponds to; the
    :mod:`repro.lint` subsystem reports the same codes without raising. The
    code is metadata only — it never changes the exception message.
    """

    #: Diagnostic rule code (``RPR…``), or ``None`` for uncoded errors.
    code: Optional[str] = None

    def __init__(self, *args: object, code: Optional[str] = None):
        super().__init__(*args)
        if code is not None:
            self.code = code


class ConfigurationError(ReproError):
    """An invalid parameter value or an inconsistent configuration object."""


class SimulationError(ReproError):
    """A violation of the simulator's execution model (e.g. stepping a dead node)."""


class TopologyError(ReproError):
    """An assembly or shape that cannot be realized (e.g. empty component)."""


class AssemblyError(TopologyError):
    """An invalid assembly description (unknown ports, dangling links, ...)."""


class ShapeSizeError(TopologyError, ConfigurationError):
    """A component size a shape cannot host (coded ``RPR105``).

    Derives from both :class:`TopologyError` (the historical type raised by
    :meth:`Shape.validate_size`) and :class:`ConfigurationError` (it is,
    semantically, a configuration mistake a static check can catch), so both
    existing ``except`` clauses keep working.
    """

    code = "RPR105"


class DslError(ReproError):
    """Base class for DSL front-end failures."""


class DslSyntaxError(DslError):
    """A lexical or grammatical error in a DSL source text.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DslSemanticError(DslError):
    """A well-formed DSL program that violates a semantic rule.

    Carries structured fields so tooling (the linter, IDE integrations) can
    consume the location and rule code without re-parsing the message:

    Attributes
    ----------
    raw_message:
        The description without the location suffix.
    line, column:
        1-based position of the offending construct (0 when unknown).
    code:
        The ``RPR…`` rule code of the violated semantic check, or ``None``.

    ``str(exc)`` keeps the historical ``"message (line L, column C)"``
    format, so callers matching on text are unaffected.
    """

    def __init__(
        self,
        message: str,
        line: int = 0,
        column: int = 0,
        code: "Optional[str]" = None,
    ):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}", code=code)
        self.raw_message = message
        self.line = line
        self.column = column


class WireError(ReproError):
    """A malformed, hostile, or version-skewed wire frame (coded ``RPR150``).

    Raised by the :mod:`repro.runtime.wire` codec for every decode failure —
    truncated frames, non-JSON bytes, unknown frame types, oversized fields,
    protocol-version mismatches. The codec's contract is that hostile input
    raises *this* type and nothing else, so transport receive loops can drop
    bad datagrams with a single ``except WireError``.
    """

    code = "RPR150"


class ConvergenceTimeout(ReproError):
    """An experiment did not converge within its round budget."""

    def __init__(self, layer: str, rounds: int):
        super().__init__(f"layer {layer!r} did not converge within {rounds} rounds")
        self.layer = layer
        self.rounds = rounds
