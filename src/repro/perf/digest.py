"""Canonical fingerprints of simulation outcomes.

Two digests back the determinism guarantees the perf work relies on:

- :func:`overlay_digest` hashes the realized overlay (every node's neighbour
  list at a layer) — two runs of the same seed must produce byte-identical
  digests, serial or parallel, optimized selection path or not;
- :func:`result_digest` hashes any JSON-representable result record, the
  form the bench trajectory stores per workload.

Simulation-side module: no wall-clock reads (DET003 applies here).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Sequence


def overlay_digest(network, layers: Sequence[str]) -> str:
    """SHA-256 over the (node → neighbours) relation of ``layers``.

    The encoding is canonical — nodes and layers in sorted order, neighbour
    lists in protocol order (neighbour order is itself deterministic under
    a fixed seed, and part of what the digest pins).
    """
    record = {}
    for node in sorted(network.alive_nodes(), key=lambda n: n.node_id):
        per_layer = {}
        for layer in sorted(layers):
            if node.has_protocol(layer):
                per_layer[layer] = list(node.protocol(layer).neighbors())
        record[node.node_id] = per_layer
    return adjacency_digest(record)


def adjacency_digest(record: Any) -> str:
    """SHA-256 over a pre-collected (node → layer → neighbours) record.

    The shared tail of :func:`overlay_digest` and the sharded engine's
    digest: the scale tier assembles its record from per-shard fragments,
    so the canonical encoding must be reachable without a live network.
    """
    return result_digest(record)


def result_digest(record: Any) -> str:
    """SHA-256 hex digest of a canonical JSON encoding of ``record``."""
    material = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
