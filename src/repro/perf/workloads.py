"""The fixed, deterministic workload matrix behind ``repro bench``.

Each workload deploys the *elementary* gossip stack — global peer sampling
feeding one Vicinity overlay — over one shape at one node count, and runs it
to shape convergence. That is exactly the hot path this subsystem optimizes
(per-round view ranking and merging), with none of the assembly runtime's
upper layers diluting the measurement.

Simulation-side module: everything here is driven by seeds and round
counters; wall-clock timing lives in :mod:`repro.perf.bench` only (the
determinism linter enforces this split, DET003).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs.collector import Collector
from repro.obs.hooks import attach_collector_to_engine
from repro.perf.digest import overlay_digest

# Layer labels of the two-protocol elementary stack: the canonical
# definitions now live with the factory; re-exported here because this
# module was their historical home.
from repro.runtime.api import OVERLAY_LAYER, PS_LAYER, RunnerConfig, make_runner


@dataclass(frozen=True)
class Workload:
    """One cell of the bench matrix: a shape at a node count.

    Frozen and built from primitives only, so it pickles cleanly into the
    parallel multi-seed runner's worker processes.
    """

    name: str
    shape: str
    n_nodes: int
    max_rounds: int = 60


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one (workload, seed) run — everything but wall time."""

    workload: str
    seed: int
    rounds_to_converge: Optional[int]
    executed: int
    messages: int
    bytes: int
    peak_view_size: int
    digest: str

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "rounds_to_converge": self.rounds_to_converge,
            "executed": self.executed,
            "messages": self.messages,
            "bytes": self.bytes,
            "peak_view_size": self.peak_view_size,
            "digest": self.digest,
        }


#: The trajectory matrices. Shapes are chosen to cover distinct metric
#: structure (1-D ring/line orders, 2-D grids, uniform cliques, recursive
#: trees/hypercubes); node counts set the candidate-pool pressure. CI cells
#: all converge within a couple of simulated seconds so the perf-smoke job
#: stays cheap; ``full`` raises the counts for real trend lines.
_CI_MATRIX: Tuple[Workload, ...] = (
    Workload("ring-64", "ring", 64),
    Workload("ring-256", "ring", 256),
    Workload("grid-64", "grid", 64),
    Workload("torus-64", "torus", 64),
    Workload("hypercube-64", "hypercube", 64),
    Workload("kring-96", "kring", 96),
    Workload("tree-63", "tree", 63),
    Workload("clique-32", "clique", 32),
)

_FULL_MATRIX: Tuple[Workload, ...] = (
    Workload("ring-256", "ring", 256),
    Workload("ring-1024", "ring", 1024, max_rounds=120),
    Workload("grid-256", "grid", 256),
    Workload("grid-1024", "grid", 1024, max_rounds=120),
    Workload("torus-256", "torus", 256),
    Workload("kring-1024", "kring", 1024, max_rounds=120),
    Workload("hypercube-256", "hypercube", 256),
    Workload("tree-255", "tree", 255),
    Workload("clique-128", "clique", 128, max_rounds=120),
)


def workload_matrix(scale: str = "ci") -> Tuple[Workload, ...]:
    """The fixed matrix for ``scale`` (``ci`` default, or ``full``)."""
    return _FULL_MATRIX if scale == "full" else _CI_MATRIX


def run_workload(
    workload: Workload, seed: int, collector: Optional[Collector] = None
) -> WorkloadResult:
    """Deploy, converge, and measure one workload under one seed.

    Deterministic: the result (digest included) is a pure function of
    ``(workload, seed)``, which is what lets the parallel runner fan seeds
    out across processes without changing any number. An attached
    ``collector`` only reads simulation state — it never touches the
    per-node RNG streams — so the digest is identical with or without it
    (pinned by tests/obs/test_disabled_path.py).
    """
    n_nodes = workload.n_nodes
    engine = make_runner(
        RunnerConfig(kind="round", n_nodes=n_nodes, seed=seed, shape=workload.shape)
    )
    deployment = engine.deployment
    network, transport = deployment.network, deployment.transport
    if collector is not None:
        attach_collector_to_engine(engine, collector)

    def shape_converged() -> bool:
        return deployment.converged()

    peak_view = 0
    converged_at: Optional[int] = None
    for round_index in range(workload.max_rounds):
        engine.run_round()
        for node in network.alive_nodes():
            for layer in (PS_LAYER, OVERLAY_LAYER):
                size = len(node.protocol(layer).view)
                if size > peak_view:
                    peak_view = size
        if shape_converged():
            converged_at = round_index + 1
            break
    return WorkloadResult(
        workload=workload.name,
        seed=seed,
        rounds_to_converge=converged_at,
        executed=engine.round,
        messages=transport.total_messages(),
        bytes=transport.total_bytes(),
        peak_view_size=peak_view,
        digest=overlay_digest(network, (PS_LAYER, OVERLAY_LAYER)),
    )
