"""Memoized proximity distances for the select-style overlay protocols.

T-Man and Vicinity both observe that evaluating the ranking function is the
dominant cost of gossip topology construction: every round, each node ranks
its whole candidate pool against its *own* profile — and a node's profile
changes only at reconfiguration, while the candidate profiles it ranks are
the same few dozen peers round after round. :class:`DistanceCache` exploits
exactly that shape: it memoizes ``distance(reference, profile)`` for one
bound reference profile and passes every other query through unchanged.
"""

from __future__ import annotations

from typing import Any

from repro.gossip.selection import Profile, Proximity

#: Cache-miss sentinel (``None`` would be ambiguous only if a metric returned
#: ``None``, which is invalid anyway — but a sentinel costs nothing).
_MISS: Any = object()

#: Safety valve: profiles seen from one reference are bounded by the live
#: population, but a pathological metric over unbounded profile values must
#: not leak memory across a long churn run.
_MAX_ENTRIES = 4096


class DistanceCache(Proximity):
    """A :class:`Proximity` that memoizes distances from one reference profile.

    Drop-in: pass it wherever the wrapped proximity was passed. Queries with
    ``a is reference`` (the hot self-ranking path of ``_merge``-style view
    selection and ``neighbors()``) hit the memo; queries against any other
    reference (e.g. ranking a buffer for a gossip *partner*) delegate to the
    wrapped proximity untouched, so semantics are identical by construction.

    The cache is keyed by the candidate profile itself. Unhashable profiles
    disable memoization permanently for this instance (correctness first);
    :meth:`rebind` — called on reconfiguration, when the owner adopts a new
    profile — invalidates everything, because every memoized distance was
    measured from the old reference.
    """

    def __init__(self, base: Proximity, reference: Profile):
        self.base = base
        self.reference = reference
        self._cache: dict = {}
        self._cacheable = True
        self.hits = 0
        self.misses = 0
        # Bind the base's eligibility directly on the instance: eligibility
        # is evaluated once per candidate on the hot path, and a delegating
        # method would add a Python frame per call for nothing.
        self.eligible = base.eligible

    def rebind(self, reference: Profile) -> None:
        """Bind a new reference profile, invalidating every memoized distance."""
        self.reference = reference
        self._cache.clear()
        self._cacheable = True

    # -- Proximity interface ---------------------------------------------------

    def distance(self, a: Profile, b: Profile) -> float:
        if a is not self.reference:
            return self.base.distance(a, b)
        return self.to(b)

    # -- the memoized direction ------------------------------------------------

    def lookup_for(self, reference: Profile):
        """The raw ``(memo.get, compute)`` pair for ``reference``, or ``None``.

        The hot-loop protocol :func:`repro.gossip.selection.select_closest`
        probes for this method (duck-typed — selection cannot import this
        module without a cycle): when the ranking reference is the bound one,
        it reads warm distances straight out of the memo dict at C speed and
        only falls into :meth:`to` on a miss.
        """
        if reference is self.reference and self._cacheable:
            return self._cache.get, self.to
        return None

    def to(self, profile: Profile) -> float:
        """``distance(reference, profile)``, memoized.

        Suitable as the ranking key of :meth:`PartialView.closest` (wrapped
        in ``lambda d: cache.to(d.profile)``).
        """
        if not self._cacheable:
            return self.base.distance(self.reference, profile)
        try:
            value = self._cache.get(profile, _MISS)
        except TypeError:  # unhashable profile: stop caching, stay correct
            self._cacheable = False
            self._cache.clear()
            return self.base.distance(self.reference, profile)
        if value is _MISS:
            value = self.base.distance(self.reference, profile)
            if len(self._cache) >= _MAX_ENTRIES:
                self._cache.clear()
            self._cache[profile] = value
            self.misses += 1
        else:
            self.hits += 1
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistanceCache(entries={len(self._cache)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
