"""The timing harness behind ``repro bench`` — the perf trajectory writer.

This is the *only* perf module allowed to read the wall clock (the DET003
linter pins the others to simulated time): it wraps each deterministic
workload run with ``time.perf_counter`` and aggregates the results into a
:class:`BenchReport`, serialized as ``BENCH_gossip.json`` at the repo root
plus an aligned text table under ``benchmarks/results/``. Future PRs regress
against that trajectory: wall times are environment-dependent, but
rounds-to-convergence, message/byte counts, and per-seed digests must only
move when the simulation's semantics deliberately change.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.harness import run_parallel_seeds
from repro.metrics.report import render_table
from repro.metrics.stats import summarize
from repro.perf.workloads import Workload, run_workload, workload_matrix
from repro.sim.rng import spawn_seeds

#: Schema version of the BENCH_*.json trajectory format.
SCHEMA = 1

#: Seeds per workload cell at each scale.
SEEDS_PER_SCALE = {"ci": 2, "full": 5}


def _timed_worker(task: Tuple[Workload, int]) -> Tuple[dict, float]:
    """Run one (workload, seed) cell and time it (module-level: must pickle).

    Returns the result as a plain dict so the parent never depends on class
    identity across process boundaries.
    """
    workload, seed = task
    start = time.perf_counter()
    result = run_workload(workload, seed)
    return result.to_dict(), time.perf_counter() - start


@dataclass
class WorkloadSummary:
    """All seeds of one matrix cell, with timing."""

    workload: Workload
    seeds: Tuple[int, ...]
    results: List[dict]
    wall_times: List[float]

    def to_dict(self) -> Dict:
        rounds = [r["rounds_to_converge"] for r in self.results]
        stats = summarize(rounds)
        return {
            "name": self.workload.name,
            "shape": self.workload.shape,
            "n_nodes": self.workload.n_nodes,
            "max_rounds": self.workload.max_rounds,
            "seeds": list(self.seeds),
            "converged": sum(1 for r in rounds if r is not None),
            "rounds_to_converge": {
                "mean": None if stats.n == 0 else round(stats.mean, 2),
                "ci90": round(stats.ci90, 2),
                "failures": stats.failures,
            },
            "wall_time_s": {
                "mean": round(sum(self.wall_times) / len(self.wall_times), 4),
                "min": round(min(self.wall_times), 4),
                "max": round(max(self.wall_times), 4),
            },
            "messages": sum(r["messages"] for r in self.results),
            "bytes": sum(r["bytes"] for r in self.results),
            "peak_view_size": max(r["peak_view_size"] for r in self.results),
            "digests": [r["digest"] for r in self.results],
        }


@dataclass
class BenchReport:
    """One full bench run over the workload matrix."""

    scale: str
    master_seed: int
    parallel: Optional[int]
    summaries: List[WorkloadSummary] = field(default_factory=list)
    #: Observability verification section (``--obs`` runs only): digest
    #: identity and wall-time overhead of the instrumented second pass.
    obs: Optional[Dict] = None
    #: The collector of the instrumented pass (not serialized; the CLI
    #: drains it into the JSONL/Prometheus exporters).
    obs_collector: Optional[object] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict:
        cells = [summary.to_dict() for summary in self.summaries]
        out = {
            "schema": SCHEMA,
            "suite": "gossip",
            "scale": self.scale,
            "master_seed": self.master_seed,
            "workloads": cells,
            "totals": {
                "wall_time_s": round(
                    sum(sum(s.wall_times) for s in self.summaries), 4
                ),
                "messages": sum(cell["messages"] for cell in cells),
                "bytes": sum(cell["bytes"] for cell in cells),
            },
        }
        if self.obs is not None:
            out["obs"] = self.obs
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def run_bench(
    scale: str = "ci",
    seeds: Optional[int] = None,
    master_seed: int = 1,
    parallel: Optional[int] = None,
    obs: bool = False,
) -> BenchReport:
    """Run the fixed workload matrix at ``scale`` and collect the report.

    Every (workload, seed) cell is an independent task for the parallel
    multi-seed runner; seeds derive deterministically from ``master_seed``
    and the workload name, so two bench runs measure identical simulations
    regardless of worker count.

    With ``obs=True``, a *serial* second pass re-runs every cell with a
    shared telemetry collector attached and records, in the report's
    ``obs`` section, (a) whether every per-cell overlay digest is
    byte-identical to the uninstrumented run — the zero-interference
    contract of ``ctx.obs`` — and (b) the wall-time overhead fraction of
    instrumentation. Structural gauge sampling is disabled
    (``gauge_every=0``) so the measurement isolates the hot-path hooks.
    """
    matrix = workload_matrix(scale)
    n_seeds = seeds or SEEDS_PER_SCALE.get(scale, 2)
    tasks: List[Tuple[Workload, int]] = []
    for workload in matrix:
        for seed in spawn_seeds(master_seed, n_seeds, "bench", workload.name):
            tasks.append((workload, seed))
    outcomes = run_parallel_seeds(_timed_worker, tasks, parallel=parallel)
    report = BenchReport(scale=scale, master_seed=master_seed, parallel=parallel)
    index = 0
    for workload in matrix:
        cell = outcomes[index : index + n_seeds]
        report.summaries.append(
            WorkloadSummary(
                workload=workload,
                seeds=tuple(task[1] for task in tasks[index : index + n_seeds]),
                results=[result for result, _ in cell],
                wall_times=[wall for _, wall in cell],
            )
        )
        index += n_seeds
    if obs:
        report.obs, report.obs_collector = _instrumented_pass(tasks, outcomes)
    return report


def _instrumented_pass(
    tasks: List[Tuple[Workload, int]],
    outcomes: List[Tuple[dict, float]],
    repeats: int = 5,
) -> Tuple[Dict, object]:
    """Re-run the whole matrix serially: control, instrumented, and traced.

    Serial on purpose: a collector is mutable shared state, so it cannot
    cross the parallel runner's process boundary. Each *variant* is timed
    over the full matrix in one sweep, and the sweep triple is repeated
    ``repeats`` times keeping the per-variant minimum: individual 0.1 s
    cells on a shared machine swing by ±30 % (bursty host contention), far
    above the single-digit overhead being measured, but a multi-second
    sweep dilutes any burst and the min over repeats is the standard
    noise-floor estimator for identical deterministic work. The first
    pass's wall times (possibly parallel, always colder) are not reused.
    """
    from repro.obs.collector import Collector
    from repro.obs.flow import FlowTracer

    collector = Collector(gauge_every=0)
    flow = FlowTracer()
    flow_collector = Collector(gauge_every=0, flow=flow)
    best = {"control": None, "instrumented": None, "traced": None}
    mismatches: List[str] = []

    def sweep(attempt: int, label: str, sink: Optional[Collector]) -> None:
        wall = 0.0
        for (workload, seed), (baseline, _wall) in zip(tasks, outcomes):
            result, cell_wall = _timed_quiet(
                lambda: run_workload(workload, seed, collector=sink)
            )
            wall += cell_wall
            if result.digest != baseline["digest"]:
                mismatches.append(
                    f"{workload.name}/seed={seed}/{label}/rep={attempt}"
                )
        _keep_min(best, label, wall)

    for attempt in range(max(1, repeats)):
        sweep(attempt, "control", None)
        # Counters accumulate across repeats; only per-run totals are
        # reported, so divide by ``repeats`` below.
        sweep(attempt, "instrumented", collector)
        # Third variant: provenance tracing on. Tags ride the descriptors
        # but never touch equality, selection, or RNG — the digest must
        # STILL match the uninstrumented run, and the extra wall time
        # bounds the cost of causal flow tracing.
        sweep(attempt, "traced", flow_collector)
    baseline_wall = best["control"]
    instrumented_wall = best["instrumented"]
    flow_wall = best["traced"]

    def fraction(wall: float) -> float:
        return (wall - baseline_wall) / baseline_wall if baseline_wall > 0 else 0.0

    # Repeats are identical deterministic runs, so per-run totals divide
    # exactly (// keeps them integers for the trajectory diff).
    per_run = max(1, repeats)
    section = {
        "gauge_every": 0,
        "cells": len(tasks),
        "repeats": per_run,
        "digests_identical": not mismatches,
        "digest_mismatches": mismatches,
        "baseline_wall_s": round(baseline_wall, 4),
        "instrumented_wall_s": round(instrumented_wall, 4),
        "overhead_fraction": round(fraction(instrumented_wall), 4),
        "flow_wall_s": round(flow_wall, 4),
        "flow_overhead_fraction": round(fraction(flow_wall), 4),
        "flow_deliveries": flow.deliveries // per_run,
        "events": len(collector.events) // per_run,
        "counter_increments": sum(collector.counters.values()) // per_run,
    }
    return section, collector


def _keep_min(best: Dict[str, Optional[float]], key: str, wall: float) -> None:
    if best[key] is None or wall < best[key]:
        best[key] = wall


def _timed_quiet(run: Callable[[], Any]) -> Tuple[Any, float]:
    """Time one run with the cyclic GC parked.

    The shared collectors accumulate state across cells, so generational
    collections would otherwise fire at arbitrary points and charge their
    pause to whichever variant happens to be running — noise an order of
    magnitude above the overhead being measured. Collecting *before* and
    disabling *during* gives every variant the same GC bill: zero.
    """
    import gc

    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run()
        return result, time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def format_bench(report: BenchReport) -> str:
    """Render the report as the aligned table archived under benchmarks/."""
    headers = (
        "workload",
        "nodes",
        "seeds",
        "rounds",
        "wall s (mean)",
        "messages",
        "kB",
        "peak view",
    )
    rows = []
    for summary in report.summaries:
        cell = summary.to_dict()
        mean_rounds = cell["rounds_to_converge"]["mean"]
        rows.append(
            (
                cell["name"],
                cell["n_nodes"],
                len(cell["seeds"]),
                "n/a" if mean_rounds is None else f"{mean_rounds:.1f}",
                f"{cell['wall_time_s']['mean']:.3f}",
                cell["messages"],
                f"{cell['bytes'] / 1024:.0f}",
                cell["peak_view_size"],
            )
        )
    title = (
        f"repro bench — gossip hot-path workload matrix "
        f"(scale={report.scale}, master_seed={report.master_seed})"
    )
    return render_table(headers, rows, title=title)


def check_bench(
    report: Any, baseline: Dict, tolerance: float = 0.20
) -> List[Dict[str, Any]]:
    """Per-cell wall-time regression check against a committed trajectory.

    ``report`` is a fresh :class:`BenchReport` (or its ``to_dict`` form);
    ``baseline`` is the parsed committed ``BENCH_gossip.json``. A cell
    regresses when its mean wall time exceeds the baseline's by more than
    ``tolerance`` (default 20 %). Cells absent from the baseline are new
    work, not regressions, and are skipped; so are baseline cells with a
    zero/missing mean (nothing meaningful to compare against). Returns the
    regression records, empty when the gate passes.
    """
    current = report.to_dict() if hasattr(report, "to_dict") else report
    baseline_cells = {
        cell.get("name"): cell for cell in baseline.get("workloads", ())
    }
    regressions: List[Dict[str, Any]] = []
    for cell in current.get("workloads", ()):
        base = baseline_cells.get(cell.get("name"))
        if base is None:
            continue
        base_mean = (base.get("wall_time_s") or {}).get("mean")
        mean = (cell.get("wall_time_s") or {}).get("mean")
        if not base_mean or mean is None:
            continue
        ratio = mean / base_mean
        if ratio > 1.0 + tolerance:
            regressions.append(
                {
                    "name": cell["name"],
                    "baseline_s": base_mean,
                    "current_s": mean,
                    "ratio": round(ratio, 3),
                    "tolerance": tolerance,
                }
            )
    return regressions


def format_check(
    regressions: List[Dict[str, Any]], tolerance: float = 0.20
) -> str:
    """One line per regressed cell, or the all-clear line."""
    if not regressions:
        return f"bench check: OK (no cell regressed past {tolerance:.0%})"
    lines = [
        f"bench check: {len(regressions)} cell(s) regressed past {tolerance:.0%}"
    ]
    for entry in regressions:
        lines.append(
            f"  {entry['name']}: {entry['baseline_s']:.4f}s -> "
            f"{entry['current_s']:.4f}s ({entry['ratio']:.2f}x)"
        )
    return "\n".join(lines)


def write_bench(
    report: BenchReport,
    json_path: str = "BENCH_gossip.json",
    results_dir: Optional[str] = "benchmarks/results",
) -> List[str]:
    """Write the JSON trajectory (and the text table); return written paths."""
    written = []
    path = pathlib.Path(json_path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = report.to_dict()
    if path.exists():
        # Other benches co-own this file: the scale bench's scale_tiers
        # section and the swarm harness's swarm section must survive a
        # perf-matrix rewrite (and vice versa — see
        # repro.scale.bench.write_scale_bench and repro.runtime.swarm).
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            previous = {}
        for section in ("scale_tiers", "swarm"):
            if section in previous:
                payload[section] = previous[section]
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    written.append(str(path))
    if results_dir is not None:
        directory = pathlib.Path(results_dir)
        directory.mkdir(parents=True, exist_ok=True)
        table_path = directory / "bench_gossip.txt"
        table_path.write_text(format_bench(report) + "\n", encoding="utf-8")
        written.append(str(table_path))
    return written
