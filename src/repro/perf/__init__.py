"""Performance subsystem: hot-path caches, digests, and the bench harness.

Three concerns live here (docs/performance.md has the full story):

- :mod:`repro.perf.cache` — the memoized distance cache the select-style
  overlay protocols (Vicinity, T-Man) rank through; ranking-function
  evaluation is the dominant cost of gossip topology construction.
- :mod:`repro.perf.workloads` — the fixed, deterministic workload matrix
  (node counts × shapes) the performance trajectory is measured on, plus
  :mod:`repro.perf.digest` to fingerprint outcomes for regression checks.
  These modules are *simulation-side*: the determinism linter forbids
  wall-clock reads in them (DET003).
- :mod:`repro.perf.bench` — the timing harness behind ``repro bench``:
  runs the matrix (in parallel across seeds), records wall time, rounds to
  convergence, message/byte counts and peak view sizes, and writes the
  machine-readable ``BENCH_gossip.json`` trajectory.
"""

from repro.perf.cache import DistanceCache
from repro.perf.digest import overlay_digest, result_digest

#: Lazy re-exports (PEP 562). The overlay protocols import
#: :class:`DistanceCache` from this package while the bench/workload modules
#: import those same protocols — eager re-exports here would close an import
#: cycle (gossip → perf → bench → harness → core → gossip).
_LAZY = {
    "BenchReport": "repro.perf.bench",
    "format_bench": "repro.perf.bench",
    "run_bench": "repro.perf.bench",
    "write_bench": "repro.perf.bench",
    "Workload": "repro.perf.workloads",
    "WorkloadResult": "repro.perf.workloads",
    "run_workload": "repro.perf.workloads",
    "workload_matrix": "repro.perf.workloads",
}

__all__ = [
    "BenchReport",
    "DistanceCache",
    "Workload",
    "WorkloadResult",
    "format_bench",
    "overlay_digest",
    "result_digest",
    "run_bench",
    "run_workload",
    "workload_matrix",
    "write_bench",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
