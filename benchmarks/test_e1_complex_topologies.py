"""E1 (paper §4.i) — building complex real-world-like topologies.

The paper's first experiment shows the framework "can actually generate
complex topologies, comparable to those used currently in real-world
applications". This bench converges every predefined composite assembly
(MongoDB star-of-cliques, ring-of-rings, grid-of-rings, line-of-stars, the
IoT composite) and reports rounds-to-converge per topology.
"""

from __future__ import annotations

from repro.core import Runtime
from repro.experiments.harness import current_scale, measure_convergence
from repro.experiments.topologies import (
    grid_of_rings,
    iot_composite,
    line_of_stars,
    ring_of_rings,
    star_of_cliques,
)
from repro.metrics.report import render_table

TOPOLOGIES = [
    ("star_of_cliques (MongoDB)", lambda: star_of_cliques(4, 18, 8)),
    ("ring_of_rings", lambda: ring_of_rings(8, 16)),
    ("grid_of_rings", lambda: grid_of_rings(3, 3, 12)),
    ("line_of_stars", lambda: line_of_stars(4, 12)),
    ("iot_composite", lambda: iot_composite(32, 15, 12, 5)),
]


def run_experiment():
    scale = current_scale()
    rows = []
    for name, factory in TOPOLOGIES:
        assembly = factory()
        stats = measure_convergence(
            assembly, assembly.total_nodes, scale.seeds, scale.max_rounds
        )
        slowest = max(stats.values(), key=lambda s: (s.failures, s.mean))
        rows.append(
            (
                name,
                assembly.total_nodes,
                len(assembly.components),
                len(assembly.links),
                str(stats["core"]),
                str(stats["port_connection"]),
                str(slowest),
            )
        )
    return rows


def test_e1_complex_topologies(benchmark, record_result):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = render_table(
        ("Topology", "Nodes", "Comps", "Links", "Core", "PortConn", "Slowest layer"),
        rows,
        title="E1: convergence of complex real-world-like topologies "
        "(rounds, mean ±90% CI)",
    )
    record_result("e1_complex_topologies", text)
    # Every topology must have converged in every seed (no failures).
    for row in rows:
        assert "failed" not in row[6], row


def test_e1_all_layers_converge_for_mongo(benchmark):
    """Focused check on the paper's flagship example."""
    scale = current_scale()
    assembly = star_of_cliques(4, 18, 8)

    def run():
        deployment = Runtime(assembly, seed=scale.seeds[0]).deploy()
        return deployment.run_until_converged(scale.max_rounds)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.converged, report.rounds
