"""A4 — T-Man as the component core protocol (ablation).

The paper cites both Vicinity and T-Man as topology-construction protocols
and uses Vicinity for its prototype. This ablation swaps T-Man in as the
core protocol of every component and compares the full runtime's per-layer
convergence.
"""

from __future__ import annotations

from repro.experiments.ablations import core_flavor_comparison
from repro.experiments.harness import current_scale
from repro.metrics.report import render_table


def test_a4_core_flavor(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: core_flavor_comparison(n_nodes=128, scale=scale),
        rounds=1,
        iterations=1,
    )
    layers = sorted(result["vicinity"])
    record_result(
        "a4_tman_core",
        render_table(
            ("Layer",) + tuple(sorted(result)),
            [
                (layer,) + tuple(str(result[flavor][layer]) for flavor in sorted(result))
                for layer in layers
            ],
            title="A4: full runtime with Vicinity vs T-Man core protocols "
            "(ring-of-rings, 128 nodes; rounds to converge)",
        ),
    )
    for flavor in ("vicinity", "tman"):
        assert result[flavor]["core"].failures == 0, f"{flavor} core failed"
