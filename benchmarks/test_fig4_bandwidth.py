"""Figure 4 — bandwidth of the runtime vs the core-protocol baseline.

Paper: for 20 components, "Both follow the same pattern, and both are very
small" — two per-round byte series (core protocol baseline vs runtime
sub-procedure overhead), each under ~1 000 bytes per node per round, rising
over the first rounds and then flat.

Checks on the regenerated series:

- both series plateau (late-round spread is small);
- both are small in absolute terms (hundreds of bytes — our cost model's
  descriptor sizes are documented in DESIGN.md);
- both follow the same rise-then-flat pattern (correlated shape).
"""

from __future__ import annotations

from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.harness import current_scale


def test_fig4_bandwidth_split(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: run_fig4(scale=scale), rounds=1, iterations=1
    )
    record_result("fig4_bandwidth", format_fig4(result))

    baseline, overhead = result.baseline, result.overhead
    # Both series are "very small": a few hundred bytes per node per round
    # at steady state (the paper plots both under ~1000 B; our documented
    # cost model lands in the same band).
    assert max(baseline) < 1200, f"baseline too large: {max(baseline):.0f} B"
    assert max(overhead) < 1600, f"overhead too large: {max(overhead):.0f} B"

    # Both plateau: the last rounds vary by < 15% of their level.
    for name, series in (("baseline", baseline), ("overhead", overhead)):
        tail = series[-5:]
        spread = max(tail) - min(tail)
        assert spread <= 0.15 * max(tail), (
            f"{name} does not plateau: tail {tail}"
        )

    # Same pattern: both rise from round 0 to their plateau.
    assert baseline[0] <= max(baseline)
    assert overhead[0] <= max(overhead)
    assert baseline[-1] > 0 and overhead[-1] > 0


def test_fig4_overhead_is_bounded_multiple_of_baseline(benchmark):
    """The runtime's five sub-procedures cost a small constant factor of the
    single core protocol — the 'low-overhead' claim quantified."""
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: run_fig4(rounds=12, scale=scale), rounds=1, iterations=1
    )
    steady_baseline = result.baseline[-1]
    steady_overhead = result.overhead[-1]
    # Paper: "Both follow the same pattern, and both are very small" —
    # overhead sits in the same band as the baseline, not a multiple of it.
    assert steady_overhead <= 2.5 * steady_baseline
