"""A2 — the peer-sampling feed is load-bearing (ablation).

Vicinity's subtitle is "a pinch of randomness brings out the structure":
without the random candidate feed, the greedy overlay starves and never
converges from a cold start. This ablation measures exactly that.
"""

from __future__ import annotations

from repro.experiments.ablations import random_feed_ablation
from repro.experiments.harness import current_scale
from repro.metrics.report import render_table


def test_a2_random_feed(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: random_feed_ablation(n_nodes=256, max_rounds=40, scale=scale),
        rounds=1,
        iterations=1,
    )
    record_result(
        "a2_random_feed",
        render_table(
            ("Configuration", "Rounds to converge"),
            [(name, str(stats)) for name, stats in result.items()],
            title="A2: elementary ring (256 nodes) with/without the "
            "peer-sampling candidate feed",
        ),
    )
    assert result["with_random_feed"].failures == 0
    assert result["without_random_feed"].n == 0, (
        "the no-feed configuration should starve from a cold start"
    )
