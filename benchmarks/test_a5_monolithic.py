"""A5 — layered runtime vs the monolithic single-overlay design.

The paper's motivating claim (§2.2): traditional self-organizing overlays
"are unfortunately monolithic [...] complex combinations, such as a star of
cliques, are more problematic". This bench quantifies the claim on exactly
that topology: one Vicinity instance with a composite distance function
versus the layered runtime.
"""

from __future__ import annotations

from repro.experiments.ablations import monolithic_comparison
from repro.experiments.harness import current_scale
from repro.metrics.report import render_table


def test_a5_monolithic_vs_layered(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: monolithic_comparison(n_nodes=104, scale=scale),
        rounds=1,
        iterations=1,
    )
    record_result(
        "a5_monolithic",
        render_table(
            ("Design", "Rounds to realize all component shapes"),
            [(name, str(stats)) for name, stats in result.items()],
            title="A5: star-of-cliques (104 nodes) — layered runtime vs "
            "one monolithic overlay",
        ),
    )
    layered = result["layered_runtime_core"]
    monolithic = result["monolithic_overlay"]
    assert layered.failures == 0
    # The monolithic design loses: slower when it converges at all (and it
    # cannot express the links between components in any case).
    assert monolithic.failures > 0 or monolithic.mean > layered.mean
