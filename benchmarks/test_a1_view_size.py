"""A1 — Vicinity view size vs convergence speed (ablation).

The paper does not publish its gossip parameters; this ablation quantifies
the view-size trade-off on the elementary ring: larger views converge in
fewer rounds but cost proportionally more memory and bandwidth.
"""

from __future__ import annotations

from repro.experiments.ablations import view_size_sweep
from repro.experiments.harness import current_scale
from repro.metrics.report import render_table


def test_a1_view_size_sweep(benchmark, record_result):
    scale = current_scale()
    rows = benchmark.pedantic(
        lambda: view_size_sweep(
            view_sizes=(4, 8, 12, 16, 24), n_nodes=256, scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    record_result(
        "a1_view_size",
        render_table(
            ("View size", "Rounds to converge"),
            [(size, str(stats)) for size, stats in rows],
            title="A1: elementary ring (256 nodes) vs Vicinity view size",
        ),
    )
    converged = [(size, stats) for size, stats in rows if stats.n > 0]
    assert converged, "no view size converged at all"
    # Bigger views never hurt by much: the largest view is at least as fast
    # as the smallest converging one.
    smallest = converged[0][1].mean
    largest = converged[-1][1].mean
    assert largest <= smallest + 2
