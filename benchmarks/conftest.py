"""Shared infrastructure for the reproduction benchmarks.

Every bench regenerates one table/figure of the paper (see DESIGN.md §4),
prints it, and archives it under ``benchmarks/results/`` so the numbers
survive the pytest capture. Scales follow ``REPRO_SCALE`` (``ci`` default /
``full`` for the paper's 25 600-node, 25-seed parameters).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print a result table and archive it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[archived to {path}]")

    return _record
