"""Shared infrastructure for the reproduction benchmarks.

Every bench regenerates one table/figure of the paper (see DESIGN.md §4),
prints it, and archives it under ``benchmarks/results/`` so the numbers
survive the pytest capture. Scales follow ``REPRO_SCALE`` (``ci`` default /
``full`` for the paper's 25 600-node, 25-seed parameters).
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print a result table and archive it under benchmarks/results/.

    ``data``, when given, is archived alongside the text table as a JSON
    sidecar (``<name>.json``) so trajectory tooling can diff runs without
    parsing aligned tables.
    """

    def _record(name: str, text: str, data: Optional[dict] = None) -> None:
        # parents=True: a fresh checkout (or a results dir pruned by CI
        # artifact collection) must not crash the first recording bench.
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        if data is not None:
            sidecar = RESULTS_DIR / f"{name}.json"
            sidecar.write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        print(f"\n{text}\n[archived to {path}]")

    return _record
