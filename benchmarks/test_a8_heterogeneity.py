"""A8 — uniform vs skewed component sizes (ablation).

Real assemblies mix small components with large ones (the paper's MongoDB
example: an 8-node router next to big shard cliques). This bench compares
the runtime's convergence on a balanced ring-of-rings against a heavily
skewed one (one component holding half the population) at equal node count.
"""

from __future__ import annotations

from repro.experiments.ablations import heterogeneity_study
from repro.experiments.harness import current_scale
from repro.metrics.report import render_table


def test_a8_heterogeneity(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: heterogeneity_study(n_nodes=160, scale=scale),
        rounds=1,
        iterations=1,
    )
    layers = sorted(result["balanced"])
    record_result(
        "a8_heterogeneity",
        render_table(
            ("Layer", "Balanced (8 equal rings)", "Skewed (1 giant + 7 small)"),
            [
                (
                    layer,
                    str(result["balanced"][layer]),
                    str(result["skewed"][layer]),
                )
                for layer in layers
            ],
            title="A8: convergence with uniform vs skewed component sizes "
            "(160 nodes; rounds, mean ±90% CI)",
        ),
    )
    for variant in ("balanced", "skewed"):
        for layer, stats in result[variant].items():
            assert stats.failures == 0, f"{variant}/{layer} failed"
    # Skew costs something (the giant ring converges slower than small
    # ones) but stays within a small multiple of the balanced case.
    assert (
        result["skewed"]["core"].mean
        <= max(3.0 * result["balanced"]["core"].mean, result["balanced"]["core"].mean + 15)
    )
