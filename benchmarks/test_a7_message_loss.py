"""A7 — convergence under message loss (ablation).

Paper §3.3: "Gossip algorithms are probabilistic, naturally resilient and
offer good convergence times in most practical situations." This bench
quantifies the resilience half of the claim: a fraction of all active gossip
exchanges is dropped every round, and the full runtime must still converge
— degrading in speed, not in outcome.
"""

from __future__ import annotations

from repro.experiments.ablations import loss_tolerance_sweep
from repro.experiments.harness import current_scale
from repro.metrics.report import render_table


def test_a7_message_loss(benchmark, record_result):
    scale = current_scale()
    rows = benchmark.pedantic(
        lambda: loss_tolerance_sweep(
            loss_rates=(0.0, 0.1, 0.2, 0.4), n_nodes=128, scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    table = []
    for loss_rate, stats in rows:
        slowest = max(
            stats.values(), key=lambda s: (s.failures, s.mean if s.n else 0)
        )
        table.append(
            (
                f"{loss_rate:.0%}",
                str(stats["core"]),
                str(stats["port_connection"]),
                str(slowest),
            )
        )
    record_result(
        "a7_message_loss",
        render_table(
            ("Loss rate", "Core", "Port connection", "Slowest layer"),
            table,
            title="A7: full-runtime convergence under message loss "
            "(ring-of-rings, 128 nodes; rounds, mean ±90% CI)",
        ),
    )
    # Resilience: every layer still converges in every seed up to 40% loss.
    for loss_rate, stats in rows:
        for layer, layer_stats in stats.items():
            assert layer_stats.failures == 0, (
                f"{layer} failed at {loss_rate:.0%} loss"
            )
    # Degradation is graceful: 40% loss costs at most ~3x the lossless rounds.
    lossless = rows[0][1]["core"].mean
    lossy = rows[-1][1]["core"].mean
    assert lossy <= max(3.0 * lossless, lossless + 12)
