"""A6 — application QoS over the realized assembly.

The paper's closing motivation: composition should "provide better Quality
of Service [...] (better latency, load repartition)". This bench runs
uniform random application traffic over a converged star-of-cliques and a
ring-of-rings and reports delivery rate and hop statistics — the latency
proxy on a round-based substrate — plus delivery under a failure wave
(after healing).
"""

from __future__ import annotations

from repro.app import MessageService
from repro.core import Runtime
from repro.experiments.harness import current_scale
from repro.experiments.topologies import ring_of_rings, star_of_cliques
from repro.metrics.report import render_table


def run_experiment():
    scale = current_scale()
    seed = scale.seeds[0]
    rows = []
    for name, factory in (
        ("star_of_cliques", lambda: star_of_cliques(4, 18, 8)),
        ("ring_of_rings", lambda: ring_of_rings(8, 16)),
    ):
        assembly = factory()
        deployment = Runtime(assembly, seed=seed).deploy()
        report = deployment.run_until_converged(scale.max_rounds)
        assert report.converged, report.rounds
        service = MessageService(deployment)
        healthy = service.random_traffic(200, seed=seed)

        # Failure wave: kill 10% of the population, heal, re-measure.
        rng = deployment.streams.fork("qos").stream("kill")
        victims = rng.sample(
            deployment.network.alive_ids(),
            deployment.network.alive_count() // 10,
        )
        for victim in victims:
            deployment.network.kill(victim)
        deployment.rebalance()
        deployment.run(25)
        after = service.random_traffic(200, seed=seed + 1)
        rows.append(
            (
                name,
                f"{healthy.delivery_rate:.0%}",
                f"{healthy.mean_hops:.2f}",
                healthy.max_hops,
                f"{after.delivery_rate:.0%}",
                f"{after.mean_hops:.2f}",
            )
        )
    return rows


def test_a6_routing_qos(benchmark, record_result):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_result(
        "a6_routing_qos",
        render_table(
            (
                "Topology",
                "Delivery",
                "Mean hops",
                "Max hops",
                "Delivery (post-failure)",
                "Mean hops (post-failure)",
            ),
            rows,
            title="A6: application traffic QoS over converged assemblies "
            "(200 random messages; 10% failure wave + healing)",
        ),
    )
    for row in rows:
        assert row[1] == "100%", f"{row[0]}: deliveries lost when healthy"
        assert row[4] == "100%", f"{row[0]}: deliveries lost after healing"
