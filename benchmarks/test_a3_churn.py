"""A3 — convergence under churn and catastrophic-failure recovery.

The robustness claims of the paper's self-organizing substrate: the runtime
converges while nodes continuously crash and join, and after a correlated
failure of half the population the surviving overlay heals back to a fully
realized (shrunken) shape.
"""

from __future__ import annotations

from repro.experiments.ablations import churn_study
from repro.experiments.harness import current_scale
from repro.metrics.report import render_table


def test_a3_churn_and_catastrophe(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: churn_study(
            crash_rate=0.01,
            catastrophe_fraction=0.5,
            n_nodes=192,
            scale=scale,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(
        "a3_churn",
        render_table(
            ("Metric", "Value"),
            [
                ("crash rate / round", f"{result.crash_rate:.0%}"),
                (
                    "runs converged under churn",
                    f"{result.converged_runs}/{result.total_runs}",
                ),
                ("rounds to converge (churn)", str(result.rounds)),
                (
                    "core health right after 50% loss + rebalance",
                    f"{result.health_after_catastrophe:.2f}",
                ),
                (
                    "core health after 30 recovery rounds",
                    f"{result.health_after_recovery:.2f}",
                ),
            ],
            title="A3: churn resilience and catastrophic-failure recovery "
            "(ring-of-rings, 192 nodes)",
        ),
    )
    assert result.converged_runs == result.total_runs
    assert result.health_after_recovery >= 0.99
