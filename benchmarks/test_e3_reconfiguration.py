"""E3 (paper §4.iii) — dynamic reconfiguration under evolving needs.

Converges a ring-of-rings, rewrites the assembly to a star-of-cliques while
the system runs, and measures re-convergence — plus a cold-start control of
the target topology for comparison.
"""

from __future__ import annotations

from repro.experiments.harness import current_scale
from repro.experiments.reconfiguration import (
    format_reconfiguration,
    run_reconfiguration,
)


def test_e3_reconfiguration(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: run_reconfiguration(n_nodes=128, scale=scale),
        rounds=1,
        iterations=1,
    )
    record_result("e3_reconfiguration", format_reconfiguration(result))
    # The headline claim: re-convergence always completes.
    assert result.reconfigured.failures == 0
    # And it is not meaningfully worse than a cold start of the new
    # topology (the surviving substrate pays for itself).
    assert result.reconfigured.mean <= result.cold_start.mean * 1.75
