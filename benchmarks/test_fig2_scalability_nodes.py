"""Figure 2 — convergence time vs number of nodes (20 components).

Paper: "It is fast and scales well with the number of nodes" — all five
series stay below ~30 rounds over a logarithmic x-axis (100 → 25 600 nodes).
This bench regenerates the series and checks the *shape*:

- every series converges at every point;
- growth over a 16× node increase is logarithmic-like, not linear: the
  slowest point is far below 16× the fastest.

``REPRO_SCALE=full`` runs the paper's exact axis (up to 25 600 nodes).
"""

from __future__ import annotations

import math

from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.harness import ALL_SERIES, current_scale


def test_fig2_convergence_vs_nodes(benchmark, record_result):
    scale = current_scale()
    rows = benchmark.pedantic(
        lambda: run_fig2(scale=scale), rounds=1, iterations=1
    )
    record_result("fig2_scalability_nodes", format_fig2(rows))

    for row in rows:
        for series in ALL_SERIES:
            stats = row.series[series]
            assert stats.failures == 0, (
                f"{series} failed at {row.n_nodes} nodes"
            )

    # Shape check: sub-logarithmic-ish growth. Compare the largest and
    # smallest population: rounds must grow far slower than node count.
    smallest, largest = rows[0], rows[-1]
    population_ratio = largest.n_nodes / smallest.n_nodes
    for series in ALL_SERIES:
        first = max(1.0, smallest.series[series].mean)
        last = max(1.0, largest.series[series].mean)
        growth = last / first
        assert growth <= population_ratio / 2, (
            f"{series}: rounds grew {growth:.1f}x over a "
            f"{population_ratio:.0f}x population increase"
        )
        # The paper's absolute envelope: < ~30 rounds everywhere it plots.
        budget = 30 if scale.name == "full" else 40
        assert last <= budget, f"{series} exceeded the round envelope"

    # Logarithmic trend: successive doublings add a bounded number of
    # rounds rather than doubling them (checked on the steadiest series;
    # the small-seed CI of the others is too wide for a per-step check).
    series = "Same-component (UO1)"
    means = [row.series[series].mean for row in rows]
    increments = [b - a for a, b in zip(means, means[1:])]
    assert max(increments) <= max(8.0, means[0] * 1.5), (
        f"{series}: a single doubling added {max(increments):.1f} rounds"
    )
