"""Figure 3 — convergence time vs number of components (fixed population).

Paper: "It is fast and increases slowly with the number of components" —
values sit between ~2 and ~16 rounds across 1-20 components at 25 600 nodes.
This bench regenerates the sweep at the current scale and checks:

- every series converges at every component count;
- growth with component count is slow (bounded increments, small slope).
"""

from __future__ import annotations

from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.harness import ALL_SERIES, current_scale


def test_fig3_convergence_vs_components(benchmark, record_result):
    scale = current_scale()
    rows = benchmark.pedantic(
        lambda: run_fig3(scale=scale), rounds=1, iterations=1
    )
    record_result("fig3_scalability_components", format_fig3(rows))

    for row in rows:
        for series in ALL_SERIES:
            assert row.series[series].failures == 0, (
                f"{series} failed at {row.n_components} components"
            )

    first, last = rows[0], rows[-1]
    component_span = last.n_components - first.n_components
    for series in ALL_SERIES:
        start = first.series[series].mean
        end = last.series[series].mean
        # "Increases slowly": bounded absolute slope — each extra component
        # costs around a round at most, never a multiplicative blow-up.
        # (A ratio test would be meaningless for series whose small-x
        # baseline is trivially ~1 round, like UO2 with a single foreign
        # component to find.)
        slope = (end - start) / component_span
        assert slope <= 1.5, (
            f"{series}: {slope:.2f} extra rounds per added component "
            f"({start:.1f} -> {end:.1f})"
        )
        budget = 25 if scale.name == "full" else 40
        assert end <= budget, f"{series} exceeded the round envelope ({end})"
