"""E2 (paper §4.ii) — per-sub-procedure convergence on Ring of Rings.

Reports rounds-to-converge for each runtime sub-procedure (UO1, UO2, port
selection, port connection) and the elementary monolithic baseline, on the
paper's Ring-of-Rings topology.
"""

from __future__ import annotations

from repro.experiments.harness import ALL_SERIES, current_scale
from repro.experiments.ring_of_rings import (
    format_ring_of_rings,
    run_ring_of_rings,
)


def test_e2_ring_of_rings(benchmark, record_result):
    scale = current_scale()
    result = benchmark.pedantic(
        lambda: run_ring_of_rings(n_rings=8, ring_size=16, scale=scale),
        rounds=1,
        iterations=1,
    )
    record_result("e2_ring_of_rings", format_ring_of_rings(result))
    for series in ALL_SERIES:
        stats = result.series[series]
        assert stats.failures == 0, f"{series} failed to converge"
        # Paper's qualitative claim: every sub-procedure converges fast
        # (all series sit well under ~30 rounds at these scales).
        assert stats.mean <= 35, f"{series} too slow: {stats}"
