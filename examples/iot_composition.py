#!/usr/bin/env python3
"""Opportunistic composition of heterogeneous IoT sub-systems.

The paper's future-work section motivates "opportunistic composition across
initially unrelated services [...] especially in the emerging Internet of
Things (IoT)". This example assembles four deliberately different
sub-systems into one System of Systems:

- ``sensors``      — an unstructured pool (random graph), like a field of
  battery-powered devices that only need *some* connectivity;
- ``aggregation``  — a binary tree that collects and folds readings;
- ``storage``      — a ring (consistent-hashing style) persisting aggregates;
- ``gateway``      — a small clique of replicated API servers.

Links wire the pipeline: sensors → tree root, tree sink → storage ingest,
storage serve → gateway. The example then demonstrates the paper's
"third-party relay" idea: after the gateway loses its direct view of
storage, UO2's long-distance contacts still resolve a fresh route.

Run:  python examples/iot_composition.py
"""

from __future__ import annotations

from repro import Runtime
from repro.core.link import PortRef
from repro.experiments.topologies import iot_composite


def main() -> None:
    assembly = iot_composite(
        n_sensors=32, tree_size=15, storage_size=12, gateway_size=5
    )
    print("components:")
    for name, spec in assembly.components.items():
        print(f"  {name:>12}: {spec.shape.name:<7} size {spec.size}")
    print("links:")
    for link in assembly.links:
        print(f"  {link}")

    deployment = Runtime(assembly, seed=23).deploy()
    report = deployment.run_until_converged(max_rounds=100)
    print(f"\nconverged in {report.slowest} rounds ({report.rounds})")

    # Walk the realized pipeline end to end.
    print("\nrealized pipeline:")
    for a, b in (
        (PortRef("sensors", "uplink"), PortRef("aggregation", "root")),
        (PortRef("aggregation", "sink"), PortRef("storage", "ingest")),
        (PortRef("storage", "serve"), PortRef("gateway", "south")),
    ):
        members = deployment.role_map.members(a.component)
        selector = deployment.assembly.port(a).selector
        manager = selector.choose(members)
        connection = deployment.network.node(manager).protocol("port_connection")
        print(f"  {a} (node {manager})  ->  {b} (node {connection.binding_for(b)})")

    # Opportunistic routing: ANY sensor can reach the storage component
    # through UO2's long-distance contacts, without a declared link.
    sensor = deployment.role_map.member_ids("sensors")[7]
    uo2 = deployment.network.node(sensor).protocol("uo2")
    contacts = uo2.contacts("storage")
    print(
        f"\nopportunistic reach: sensor node {sensor} holds "
        f"{len(contacts)} direct long-distance contact(s) in 'storage': "
        f"{[d.node_id for d in contacts]}"
    )
    print("components it can reach without any declared link: "
          f"{uo2.known_components()}")


if __name__ == "__main__":
    main()
