#!/usr/bin/env python3
"""The paper's flagship composite: a MongoDB-style sharded cluster.

"This enables a programmer to create, deploy and maintain easily the more
complex topologies [...] such as distributed NoSQL databases with sharding
(e.g. MongoDB relies on a star of cliques)."  — paper, §2.2

This example:

1. compiles the cluster from DSL text — a router *star* whose hub links to
   the head of four shard *cliques* (replica sets);
2. converges it and prints the realized wiring;
3. crashes a shard head and shows the self-healing re-election + re-linking;
4. scales the cluster to six shards at runtime via dynamic reconfiguration.

Run:  python examples/mongodb_sharded_cluster.py
"""

from __future__ import annotations

from repro import Runtime, compile_source, reconfigure

CLUSTER = """
# A 4-shard sharded cluster: star of cliques.
topology MongoCluster {
    nodes 80
    assign proportional
    component router : star(size = 8) {
        port hub : hub            # the mongos entry point: the star's hub
    }
    component shard0 : clique(size = 18) { port head : lowest_id }
    component shard1 : clique(size = 18) { port head : lowest_id }
    component shard2 : clique(size = 18) { port head : lowest_id }
    component shard3 : clique(size = 18) { port head : lowest_id }
    link router.hub -- shard0.head
    link router.hub -- shard1.head
    link router.hub -- shard2.head
    link router.hub -- shard3.head
}
"""

SCALED_CLUSTER = CLUSTER.replace("MongoCluster", "MongoClusterScaled").replace(
    "size = 18", "size = 12"
) + ""


def describe_wiring(deployment) -> None:
    hub = deployment.role_map.members("router")[0][0]
    connection = deployment.network.node(hub).protocol("port_connection")
    print(f"  router hub: node {hub}")
    for link, _, remote in sorted(
        connection.realized_links(), key=lambda item: str(item[0])
    ):
        print(f"  {link}  ->  shard head node {remote}")


def main() -> None:
    assembly = compile_source(CLUSTER)
    deployment = Runtime(assembly, seed=7).deploy()
    report = deployment.run_until_converged(max_rounds=100)
    print(f"cluster converged in {report.slowest} rounds "
          f"(per layer: {report.rounds})")
    describe_wiring(deployment)

    # -- failure: crash shard1's head -------------------------------------
    head = min(deployment.role_map.member_ids("shard1"))
    print(f"\ncrashing shard1 head (node {head}) ...")
    deployment.network.kill(head)
    deployment.tracker.reset()
    healed = deployment.run_until_converged(max_rounds=60)
    new_head = min(
        node_id
        for node_id in deployment.role_map.member_ids("shard1")
        if deployment.network.is_alive(node_id)
    )
    print(f"self-healed in {healed.slowest} rounds; "
          f"shard1 head re-elected: node {new_head}")
    describe_wiring(deployment)

    # -- evolving needs: scale out to six smaller shards -------------------
    scaled_source = SCALED_CLUSTER.replace(
        "link router.hub -- shard3.head",
        "link router.hub -- shard3.head\n"
        "    link router.hub -- shard4.head\n"
        "    link router.hub -- shard5.head",
    ).replace(
        "component shard3 : clique(size = 12) { port head : lowest_id }",
        "component shard3 : clique(size = 12) { port head : lowest_id }\n"
        "    component shard4 : clique(size = 12) { port head : lowest_id }\n"
        "    component shard5 : clique(size = 12) { port head : lowest_id }",
    )
    print("\nreconfiguring to 6 shards (no node restarts) ...")
    reconfigure(deployment, compile_source(scaled_source))
    rescaled = deployment.run_until_converged(max_rounds=100)
    print(f"re-converged in {rescaled.slowest} rounds; shards now: "
          + ", ".join(
              name
              for name in deployment.assembly.components
              if name.startswith("shard")
          ))
    describe_wiring(deployment)


if __name__ == "__main__":
    main()
