#!/usr/bin/env python3
"""Ring of rings under churn and catastrophic failure.

The paper argues the runtime should make node volatility transparent:
"developers should not have to worry about nodes failing, leaving or joining
the system (a common occurrence in public clouds)". This example stresses
that claim on the Ring-of-Rings topology of the paper's experiment (ii):

1. converge a super-ring of 8 rings (128 nodes);
2. run continuous churn — 1% of nodes crash per round, replaced by joiners —
   and watch the core layer's health score stay high;
3. kill 40% of the population at once (the catastrophic scenario of the
   Polystyrene work the paper cites) and watch the assembly shrink, heal,
   and return to a fully realized shape.

Run:  python examples/ring_of_rings_churn.py
"""

from __future__ import annotations

from repro import Runtime
from repro.core.convergence import core_score
from repro.experiments.topologies import ring_of_rings
from repro.sim.churn import CatastrophicFailure, RandomChurn


def health(deployment) -> float:
    return core_score(
        deployment.network, deployment.role_map, deployment.assembly
    )


def main() -> None:
    assembly = ring_of_rings(n_rings=8, ring_size=16)
    deployment = Runtime(assembly, seed=11).deploy()
    report = deployment.run_until_converged(max_rounds=80)
    print(f"initial convergence: {report.slowest} rounds, health {health(deployment):.2f}")

    # -- phase 1: continuous churn ------------------------------------------
    churn = RandomChurn(
        deployment.streams.fork("churn").stream("crash"),
        crash_rate=0.01,
        join_count=1,
        provisioner=deployment.provisioner(),
        min_population=96,
    )
    deployment.engine.add_control(churn)
    print("\n20 rounds of continuous churn (1% crash rate, 1 join/round):")
    for _ in range(4):
        deployment.run(5)
        print(
            f"  round {deployment.engine.round:>3}: "
            f"{deployment.network.alive_count()} live nodes, "
            f"core health {health(deployment):.2f}"
        )
    deployment.engine.controls.remove(churn)

    # -- phase 2: catastrophic failure ---------------------------------------
    catastrophe = CatastrophicFailure(
        deployment.streams.fork("catastrophe").stream("kill"),
        at_round=deployment.engine.round,
        fraction=0.4,
    )
    deployment.engine.add_control(catastrophe)
    deployment.run(1)
    print(f"\ncatastrophe: killed {len(catastrophe.victims)} nodes at once")
    deployment.rebalance()  # survivors and spares take over vacated ranks
    print(f"  after rebalance: health {health(deployment):.2f} "
          f"({deployment.network.alive_count()} live nodes)")
    for _ in range(4):
        deployment.run(5)
        print(f"  +5 rounds: health {health(deployment):.2f}")
    print(f"\nfinal: shape fully healed = {health(deployment) == 1.0}")


if __name__ == "__main__":
    main()
