#!/usr/bin/env python3
"""QoS monitoring and traffic over a lossy deployment.

The paper's future work asks for "new tools [...] to detect and evaluate
such composition opportunities, and to enable communication and cooperation"
with "better latency, load repartition". This example shows the measurement
side of that story on a staged pipeline:

1. deploy a line-of-stars pipeline under 20% message loss — gossip's
   resilience means it still converges, just a little slower;
2. run application traffic end-to-end and report the QoS numbers a
   composition engine would consume (delivery rate, hop distribution);
3. aggregate a per-node load metric *inside* one component with push-sum
   gossip — the decentralized way each stage can report its own health.

Run:  python examples/qos_monitoring.py
"""

from __future__ import annotations

from repro import Runtime, RuntimeConfig
from repro.app import MessageService
from repro.app.aggregation import component_average
from repro.experiments.topologies import line_of_stars


def main() -> None:
    assembly = line_of_stars(n_stages=4, stage_size=12)
    config = RuntimeConfig(loss_rate=0.2)
    deployment = Runtime(assembly, config=config, seed=31).deploy()
    report = deployment.run_until_converged(max_rounds=120)
    print(
        f"pipeline converged under 20% message loss: {report.converged} "
        f"({report.slowest} rounds; per layer {report.rounds})"
    )

    # -- traffic QoS ---------------------------------------------------------
    service = MessageService(deployment)
    stats = service.random_traffic(150, seed=5)
    print(
        f"\nrandom traffic: {stats.delivered}/{stats.attempted} delivered, "
        f"mean {stats.mean_hops:.2f} hops (max {stats.max_hops}), "
        f"{stats.link_crossings} link crossings"
    )
    first = deployment.role_map.member_ids("stage0")[3]
    last = deployment.role_map.member_ids("stage3")[3]
    end_to_end = service.send(first, last)
    print(
        f"end-to-end (stage0 worker -> stage3 worker): {end_to_end.hops} hops "
        f"via {end_to_end.route.path}"
    )

    # -- decentralized load monitoring ----------------------------------------
    # Pretend each stage-1 worker measures a local queue length; the stage
    # agrees on its average via push-sum without any coordinator.
    loads = {
        node_id: float((node_id * 7) % 20)
        for node_id in deployment.role_map.member_ids("stage1")
    }
    truth = sum(loads.values()) / len(loads)
    average, rounds = component_average(
        deployment, "stage1", value_of=lambda n: loads[n], rounds=40
    )
    print(
        f"\nstage1 load average: push-sum estimate {average:.3f} "
        f"(truth {truth:.3f}) agreed by all members in {rounds} rounds"
    )


if __name__ == "__main__":
    main()
