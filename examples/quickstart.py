#!/usr/bin/env python3
"""Quickstart: assemble, deploy and converge your first topology.

Builds the paper's running example — a complex topology assembled from
simple shapes — in three steps:

1. describe the target topology with the fluent builder (or DSL text);
2. deploy it onto a simulated node population;
3. run the self-organizing runtime until every layer converges.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Runtime, TopologyBuilder


def main() -> None:
    # 1. Describe the target topology: one ring of 48 nodes, one clique of
    #    12 nodes, connected through a pair of ports.
    builder = TopologyBuilder("Quickstart")
    builder.component("backbone", "ring", size=48).port("access", "lowest_id")
    builder.component("replicas", "clique", size=12).port("access", "lowest_id")
    builder.link(("backbone", "access"), ("replicas", "access"))
    assembly = builder.nodes(60).build()

    # 2. Deploy: every node receives the full runtime stack of the paper's
    #    Figure 1 (peer sampling, UO1, UO2, core protocol, port layers).
    deployment = Runtime(assembly, seed=42).deploy()

    # 3. Converge and inspect.
    report = deployment.run_until_converged(max_rounds=80)
    print(f"topology {assembly.name!r} converged: {report.converged}")
    print("rounds per runtime layer:")
    for layer, rounds in sorted(report.rounds.items()):
        print(f"  {layer:>16}: {rounds}")

    # Who manages the ports, and is the link realized?
    ring_head = min(deployment.role_map.member_ids("backbone"))
    clique_head = min(deployment.role_map.member_ids("replicas"))
    connection = deployment.network.node(ring_head).protocol("port_connection")
    print(f"backbone.access is managed by node {ring_head}")
    print(f"replicas.access is managed by node {clique_head}")
    print(f"link realized end-to-end: {connection.neighbors() == [clique_head]}")

    # Bandwidth: what did convergence cost per node per round?
    split = deployment.bandwidth_split(report.executed)
    n = deployment.network.alive_count()
    rounds = max(1, report.executed)
    print(
        f"avg bytes/node/round — core protocols: "
        f"{sum(split['baseline']) / rounds / n:.0f}, "
        f"runtime overhead: {sum(split['overhead']) / rounds / n:.0f}"
    )


if __name__ == "__main__":
    main()
