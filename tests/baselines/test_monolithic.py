"""Tests for the monolithic overlay baselines."""

from __future__ import annotations

from repro.baselines.monolithic import (
    MonolithicComposite,
    elementary_bandwidth,
    elementary_convergence,
)
from repro.experiments.topologies import star_of_cliques
from repro.shapes import make_shape


class TestElementary:
    def test_ring_converges(self):
        result = elementary_convergence(make_shape("ring"), 64, seed=1, max_rounds=60)
        assert result.rounds_to_converge is not None
        assert result.rounds_to_converge <= 20
        assert result.executed == result.rounds_to_converge

    def test_bandwidth_series_recorded(self):
        result = elementary_convergence(make_shape("ring"), 48, seed=2, max_rounds=60)
        assert len(result.bytes_per_node_per_round) == result.executed
        assert all(value > 0 for value in result.bytes_per_node_per_round)

    def test_deterministic(self):
        first = elementary_convergence(make_shape("ring"), 48, seed=3, max_rounds=60)
        second = elementary_convergence(make_shape("ring"), 48, seed=3, max_rounds=60)
        assert first.rounds_to_converge == second.rounds_to_converge

    def test_without_random_feed_starves(self):
        """The A2 ablation: no peer-sampling feed, no convergence."""
        result = elementary_convergence(
            make_shape("ring"), 48, seed=4, max_rounds=25, random_feed=False
        )
        assert result.rounds_to_converge is None

    def test_elementary_bandwidth_runs_fixed_rounds(self):
        series = elementary_bandwidth(make_shape("ring"), 32, seed=5, rounds=8)
        assert len(series) == 8

    def test_star_needs_bigger_view_but_converges(self):
        result = elementary_convergence(make_shape("star"), 24, seed=6, max_rounds=60)
        assert result.rounds_to_converge is not None


class TestMonolithicComposite:
    def test_structurally_sound(self):
        assembly = star_of_cliques(n_shards=2, shard_size=8, router_size=6)
        monolithic = MonolithicComposite(assembly, 22, seed=1)
        assert monolithic.network.size() == 22
        assert monolithic.role_map.component_size("router") == 6

    def test_slower_than_layered_runtime(self):
        """The paper's core claim: the monolithic design struggles on
        composite topologies that the layered runtime handles quickly."""
        from repro.core import Runtime

        assembly = star_of_cliques(n_shards=3, shard_size=10, router_size=6)
        total = 36
        layered = Runtime(assembly, seed=7).deploy(total)
        layered_report = layered.run_until_converged(60)
        assert layered_report.round_of("core") is not None

        monolithic = MonolithicComposite(assembly, total, seed=7)
        monolithic_rounds = monolithic.run(max_rounds=60)
        if monolithic_rounds is not None:
            assert monolithic_rounds > layered_report.round_of("core")
