"""Property-based round-trip: random assemblies survive print → parse."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.link import LinkSpec, PortRef
from repro.core.port import PortSpec, make_selector
from repro.dsl import compile_source, to_source
from repro.shapes import make_shape

selector_specs = st.sampled_from(
    ["lowest_id", "highest_id", "hub", "rank(1)", "rank(3)"]
)

port_names = st.sampled_from(["north", "south", "east", "west", "gate"])


@st.composite
def components(draw, index):
    shape_name = draw(st.sampled_from(["ring", "line", "star", "clique", "tree"]))
    n_ports = draw(st.integers(0, 3))
    names = draw(
        st.lists(port_names, min_size=n_ports, max_size=n_ports, unique=True)
    )
    ports = tuple(
        PortSpec(name, make_selector(draw(selector_specs))) for name in names
    )
    if draw(st.booleans()):
        size = draw(st.integers(4, 64))
        return ComponentSpec(
            name=f"comp{index}", shape=make_shape(shape_name), size=size, ports=ports
        )
    weight = draw(st.floats(0.5, 8.0).map(lambda w: round(w, 2)))
    return ComponentSpec(
        name=f"comp{index}", shape=make_shape(shape_name), weight=weight, ports=ports
    )


@st.composite
def assemblies(draw):
    n_components = draw(st.integers(1, 5))
    specs = [draw(components(index)) for index in range(n_components)]
    # Links between randomly chosen declared ports (unique, non-degenerate).
    endpoints = [
        PortRef(spec.name, port.name) for spec in specs for port in spec.ports
    ]
    links = []
    seen = set()
    if len(endpoints) >= 2:
        for _ in range(draw(st.integers(0, 4))):
            a = draw(st.sampled_from(endpoints))
            b = draw(st.sampled_from(endpoints))
            if a == b:
                continue
            link = LinkSpec(a, b)
            if link in seen:
                continue
            seen.add(link)
            links.append(link)
    return Assembly(
        name="Generated",
        components=specs,
        links=links,
        total_nodes=None,
    )


@settings(max_examples=80, deadline=None)
@given(assembly=assemblies())
def test_print_parse_round_trip(assembly):
    """to_source output always reparses to an equal assembly."""
    text = to_source(assembly)
    reparsed = compile_source(text)
    assert reparsed == assembly


@settings(max_examples=40, deadline=None)
@given(assembly=assemblies())
def test_printed_source_is_stable(assembly):
    """Pretty-printing is idempotent: print(parse(print(x))) == print(x)."""
    once = to_source(assembly)
    twice = to_source(compile_source(once))
    assert once == twice
