"""Tests for the fluent TopologyBuilder and its DSL equivalence."""

from __future__ import annotations

import pytest

from repro.errors import AssemblyError
from repro.dsl import TopologyBuilder, compile_source, to_source
from repro.shapes import make_shape


class TestBuilder:
    def test_minimal(self):
        builder = TopologyBuilder("T")
        builder.component("a", "ring")
        assembly = builder.build()
        assert assembly.name == "T"
        assert "a" in assembly.components

    def test_shape_instance_accepted(self):
        builder = TopologyBuilder("T")
        builder.component("a", make_shape("grid", rows=2), size=8)
        assembly = builder.build()
        assert assembly.component("a").shape.rows == 2

    def test_shape_params_with_instance_rejected(self):
        builder = TopologyBuilder("T")
        with pytest.raises(AssemblyError):
            builder.component("a", make_shape("ring"), rows=2)

    def test_duplicate_component_rejected(self):
        builder = TopologyBuilder("T")
        builder.component("a", "ring")
        with pytest.raises(AssemblyError):
            builder.component("a", "ring")

    def test_duplicate_port_rejected(self):
        builder = TopologyBuilder("T")
        component = builder.component("a", "ring")
        component.port("p")
        with pytest.raises(AssemblyError):
            component.port("p")

    def test_port_chaining(self):
        builder = TopologyBuilder("T")
        component = builder.component("a", "ring", size=8)
        assert component.port("p").port("q", "highest_id") is component
        assert component.done() is builder
        assembly = builder.build()
        assert assembly.component("a").has_port("q")

    def test_link_accepts_strings_and_tuples(self):
        builder = TopologyBuilder("T")
        builder.component("a", "ring", size=4).port("p")
        builder.component("b", "ring", size=4).port("q")
        builder.link("a.p", ("b", "q"))
        assembly = builder.build()
        assert len(assembly.links) == 1

    def test_nodes_and_assign_chain(self):
        builder = TopologyBuilder("T")
        builder.component("a", "ring")
        assembly = builder.nodes(32).assign("hash").build()
        assert assembly.total_nodes == 32
        assert assembly.assignment.name == "hash"

    def test_builder_matches_dsl(self):
        source = """
        topology M {
            nodes 20
            component a : ring(size = 12) { port p : lowest_id }
            component b : clique(size = 8) { port q : rank(2) }
            link a.p -- b.q
        }
        """
        from_text = compile_source(source)
        builder = TopologyBuilder("M")
        builder.component("a", "ring", size=12).port("p", "lowest_id")
        builder.component("b", "clique", size=8).port("q", "rank(2)")
        builder.link(("a", "p"), ("b", "q"))
        from_builder = builder.nodes(20).build()
        assert from_text == from_builder

    def test_builder_to_source_round_trip(self):
        builder = TopologyBuilder("R")
        builder.component("grid", "grid", size=12, rows=3).port("corner")
        builder.component("pool", "random", weight=2.0, min_degree=4)
        assembly = builder.nodes(30).assign("hash").build()
        assert compile_source(to_source(assembly)) == assembly
