"""Tests for the DSL lexer."""

from __future__ import annotations

import pytest

from repro.errors import DslSyntaxError
from repro.dsl.lexer import tokenize
from repro.dsl.tokens import TokenType


def types(source):
    return [token.type for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_punctuation(self):
        assert types("{ } ( ) : , = .")[:-1] == [
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COLON,
            TokenType.COMMA,
            TokenType.EQUALS,
            TokenType.DOT,
        ]

    def test_link_arrow(self):
        tokens = tokenize("a -- b")
        assert tokens[1].type is TokenType.LINK_ARROW

    def test_identifiers_and_keywords_share_type(self):
        tokens = tokenize("topology shape_1 _x")
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])
        assert values("topology shape_1 _x") == ["topology", "shape_1", "_x"]

    def test_integers(self):
        assert values("42 -7 0") == [42, -7, 0]
        assert types("42")[0] is TokenType.INT

    def test_floats(self):
        assert values("3.5 -0.25") == [3.5, -0.25]
        assert types("3.5")[0] is TokenType.FLOAT

    def test_booleans(self):
        assert values("true false") == [True, False]

    def test_strings(self):
        assert values('"hello world"') == ["hello world"]

    def test_string_escapes(self):
        assert values(r'"a\"b\\c\nd"') == ['a"b\\c\nd']

    def test_unknown_escape_rejected(self):
        with pytest.raises(DslSyntaxError):
            tokenize(r'"\q"')

    def test_unterminated_string(self):
        with pytest.raises(DslSyntaxError, match="unterminated"):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(DslSyntaxError):
            tokenize('"line\nbreak"')

    def test_unexpected_character(self):
        with pytest.raises(DslSyntaxError, match="unexpected character"):
            tokenize("component @")


class TestComments:
    def test_hash_comment(self):
        assert values("a # the rest\nb") == ["a", "b"]

    def test_double_slash_comment(self):
        assert values("a // the rest\nb") == ["a", "b"]

    def test_comment_to_end_of_input(self):
        assert values("a # trailing") == ["a"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("ok\n   @")
        except DslSyntaxError as exc:
            assert exc.line == 2
            assert exc.column == 4
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")

    def test_dot_inside_portref_not_float(self):
        # "a.5" must lex as IDENT DOT INT, not a float.
        tokens = tokenize("ring.east")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
        ]
