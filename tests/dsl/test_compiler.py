"""Tests for the DSL compiler (AST → Assembly) and pretty-printer."""

from __future__ import annotations

import pytest

from repro.errors import DslSemanticError
from repro.core.link import PortRef
from repro.core.port import RankSelector
from repro.core.roles import HashAssignment
from repro.dsl import compile_source, to_source

MONGO = """
topology Mongo {
    nodes 56
    assign proportional
    component router : star(size = 8) {
        port hub : hub
    }
    component shard0 : clique(size = 12) { port head : lowest_id }
    component shard1 : clique(size = 12) { port head : lowest_id }
    link router.hub -- shard0.head
    link router.hub -- shard1.head
}
"""


class TestCompilation:
    def test_components_compiled(self):
        assembly = compile_source(MONGO)
        assert set(assembly.components) == {"router", "shard0", "shard1"}
        assert assembly.component("router").shape.name == "star"
        assert assembly.component("router").size == 8

    def test_ports_and_selectors(self):
        assembly = compile_source(MONGO)
        hub = assembly.component("router").port("hub")
        assert isinstance(hub.selector, RankSelector)
        assert hub.selector.rank == 0

    def test_links(self):
        assembly = compile_source(MONGO)
        assert len(assembly.links) == 2
        assert assembly.linked_components("router") == {"shard0", "shard1"}

    def test_nodes_and_assignment(self):
        assembly = compile_source(MONGO)
        assert assembly.total_nodes == 56
        assert assembly.assignment.name == "proportional"

    def test_weight_param(self):
        assembly = compile_source(
            "topology W { component a : ring(weight = 2.5) component b : ring }"
        )
        assert assembly.component("a").weight == 2.5

    def test_shape_params_forwarded(self):
        assembly = compile_source(
            "topology G { component g : grid(size = 12, rows = 3) }"
        )
        assert assembly.component("g").shape.rows == 3

    def test_hash_assignment(self):
        assembly = compile_source("topology H { assign hash component a : ring }")
        assert isinstance(assembly.assignment, HashAssignment)


class TestSemanticErrors:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("topology T { component a : dodecahedron }", "unknown shape"),
            ("topology T { component a : ring(size = 2.5) }", "size must be an integer"),
            ("topology T { component a : ring(weight = true) }", "weight must be numeric"),
            ("topology T { component a : ring(bogus = 1) }", "bad parameters"),
            (
                "topology T { component a : ring { port p : president } }",
                "unknown port selector",
            ),
            ("topology T { assign alphabetical component a : ring }", "unknown assignment"),
            (
                "topology T { component a : ring link a.p -- a.q }",
                "unknown port",
            ),
            (
                "topology T { component a : ring { port p : hub } link a.p -- b.q }",
                "unknown component",
            ),
            (
                "topology T { nodes 2 component a : ring(size = 5) }",
                "at least",
            ),
            (
                "topology T { component a : ring component a : ring }",
                "duplicate component",
            ),
        ],
    )
    def test_semantic_errors(self, source, fragment):
        with pytest.raises(DslSemanticError, match=fragment):
            compile_source(source)

    def test_error_mentions_location(self):
        source = "topology T {\n  component a : dodecahedron\n}"
        with pytest.raises(DslSemanticError, match="line 2"):
            compile_source(source)


class TestPrettyPrinter:
    def test_round_trip_equality(self):
        assembly = compile_source(MONGO)
        again = compile_source(to_source(assembly))
        assert assembly == again

    def test_output_contains_all_clauses(self):
        text = to_source(compile_source(MONGO))
        assert "nodes 56" in text
        assert "assign proportional" in text
        assert "component router : star(size = 8)" in text
        assert "port hub : rank(0)" in text
        assert "link router.hub -- shard0.head" in text

    def test_weight_printed_when_not_default(self):
        assembly = compile_source(
            "topology W { component a : ring(weight = 2.5) component b : ring }"
        )
        text = to_source(assembly)
        assert "weight = 2.5" in text
        assert compile_source(text) == assembly

    def test_shape_params_printed(self):
        assembly = compile_source("topology G { component g : torus(rows = 2) }")
        text = to_source(assembly)
        assert "rows = 2" in text
        assert compile_source(text) == assembly
