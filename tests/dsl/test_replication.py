"""Tests for the component-replication sugar (``name[K]`` / ``name[*]``)."""

from __future__ import annotations

import pytest

from repro.errors import DslSemanticError, DslSyntaxError
from repro.dsl import compile_source, parse_source

MONGO = """
topology Mongo {
    nodes 80
    component router : star(size = 8) { port hub : hub }
    component shard[4] : clique(size = 18) { port head : lowest_id }
    link router.hub -- shard[*].head
}
"""


class TestParsing:
    def test_replica_count_parsed(self):
        tree = parse_source(MONGO)
        shard = tree.components[1]
        assert shard.replicas == 4

    def test_plain_component_has_no_replicas(self):
        tree = parse_source(MONGO)
        assert tree.components[0].replicas is None

    def test_star_index_parsed(self):
        tree = parse_source(MONGO)
        link = tree.links[0]
        assert link.a_index is None
        assert link.b_index == "*"

    def test_numeric_index_parsed(self):
        tree = parse_source(
            "topology T { component a[2] : ring { port p : hub } "
            "component b : ring { port q : hub } link a[1].p -- b.q }"
        )
        assert tree.links[0].a_index == 1

    def test_zero_replicas_rejected(self):
        with pytest.raises(DslSyntaxError, match="replica count"):
            parse_source("topology T { component a[0] : ring }")

    def test_bad_index_token(self):
        with pytest.raises(DslSyntaxError, match="replica index"):
            parse_source(
                "topology T { component a[2] : ring { port p : hub } "
                "component b : ring { port q : hub } link a[x].p -- b.q }"
            )


class TestExpansion:
    def test_replicas_expand_to_numbered_components(self):
        assembly = compile_source(MONGO)
        assert sorted(assembly.components) == [
            "router",
            "shard0",
            "shard1",
            "shard2",
            "shard3",
        ]
        for index in range(4):
            spec = assembly.component(f"shard{index}")
            assert spec.size == 18
            assert spec.has_port("head")

    def test_star_fan_out_creates_one_link_per_replica(self):
        assembly = compile_source(MONGO)
        assert len(assembly.links) == 4
        assert assembly.linked_components("router") == {
            "shard0",
            "shard1",
            "shard2",
            "shard3",
        }

    def test_specific_index_link(self):
        assembly = compile_source(
            "topology T { component a[3] : ring(size = 4) { port p : hub } "
            "component b : ring(size = 4) { port q : hub } "
            "link a[2].p -- b.q }"
        )
        assert len(assembly.links) == 1
        assert assembly.linked_components("b") == {"a2"}

    def test_chain_links_between_replicas(self):
        assembly = compile_source(
            "topology T { component seg[3] : ring(size = 4) "
            "{ port w : rank(0) port e : rank(2) } "
            "link seg[0].e -- seg[1].w "
            "link seg[1].e -- seg[2].w }"
        )
        assert assembly.linked_components("seg1") == {"seg0", "seg2"}


class TestSemanticErrors:
    def test_unindexed_reference_to_replicated_component(self):
        with pytest.raises(DslSemanticError, match="replicated"):
            compile_source(
                "topology T { component a[2] : ring { port p : hub } "
                "component b : ring { port q : hub } link a.p -- b.q }"
            )

    def test_index_out_of_range(self):
        with pytest.raises(DslSemanticError, match="out of range"):
            compile_source(
                "topology T { component a[2] : ring { port p : hub } "
                "component b : ring { port q : hub } link a[5].p -- b.q }"
            )

    def test_index_on_plain_component(self):
        with pytest.raises(DslSemanticError, match="not replicated"):
            compile_source(
                "topology T { component a : ring { port p : hub } "
                "component b : ring { port q : hub } link a[0].p -- b.q }"
            )

    def test_double_fan_out_rejected(self):
        with pytest.raises(DslSemanticError, match="one side"):
            compile_source(
                "topology T { component a[2] : ring { port p : hub } "
                "component b[2] : ring { port q : hub } "
                "link a[*].p -- b[*].q }"
            )


class TestBuilderReplication:
    def test_replicate_matches_dsl_sugar(self):
        from repro.dsl import TopologyBuilder

        builder = TopologyBuilder("Mongo")
        builder.component("router", "star", size=8).port("hub", "hub")
        shards = builder.replicate(
            "shard", 4, "clique", size=18, ports={"head": "lowest_id"}
        )
        builder.link_all(("router", "hub"), shards, "head")
        from_builder = builder.nodes(80).build()
        assert from_builder == compile_source(MONGO)

    def test_replicate_returns_names(self):
        from repro.dsl import TopologyBuilder

        builder = TopologyBuilder("T")
        names = builder.replicate("w", 3, "ring", size=4)
        assert names == ["w0", "w1", "w2"]

    def test_replicate_count_validation(self):
        from repro.errors import AssemblyError
        from repro.dsl import TopologyBuilder

        with pytest.raises(AssemblyError):
            TopologyBuilder("T").replicate("w", 0, "ring")


class TestDeployment:
    def test_replicated_cluster_converges(self):
        from repro.core import Runtime

        assembly = compile_source(MONGO)
        report = Runtime(assembly, seed=5).deploy().run_until_converged(80)
        assert report.converged, report.rounds

    def test_round_trip_through_expanded_form(self):
        """to_source prints the expanded form, which reparses equal."""
        from repro.dsl import to_source

        assembly = compile_source(MONGO)
        assert compile_source(to_source(assembly)) == assembly
