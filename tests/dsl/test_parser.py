"""Tests for the DSL parser."""

from __future__ import annotations

import pytest

from repro.errors import DslSyntaxError
from repro.dsl.parser import parse_source

MINIMAL = """
topology T {
    component a : ring
}
"""

FULL = """
# A complete example exercising every clause.
topology Full {
    nodes 64
    assign hash
    component router : star(size = 8) {
        port hub : hub
    }
    component pool : random(weight = 2.5, min_degree = 3)
    component shard : clique(size = 12) {
        port head : lowest_id
        port tail : highest_id
        port mid : rank(4)
    }
    link router.hub -- shard.head
    link shard.tail -- pool.uplink
}
"""


class TestStructure:
    def test_minimal(self):
        tree = parse_source(MINIMAL)
        assert tree.name == "T"
        assert len(tree.components) == 1
        assert tree.components[0].shape == "ring"
        assert tree.nodes is None
        assert tree.assign is None

    def test_full_program(self):
        tree = parse_source(FULL)
        assert tree.name == "Full"
        assert tree.nodes == 64
        assert tree.assign == "hash"
        assert [c.name for c in tree.components] == ["router", "pool", "shard"]
        assert len(tree.links) == 2

    def test_component_params(self):
        tree = parse_source(FULL)
        pool = tree.components[1]
        params = {p.name: p.value for p in pool.params}
        assert params == {"weight": 2.5, "min_degree": 3}

    def test_ports(self):
        tree = parse_source(FULL)
        shard = tree.components[2]
        assert [(p.name, p.selector) for p in shard.ports] == [
            ("head", "lowest_id"),
            ("tail", "highest_id"),
            ("mid", "rank(4)"),
        ]

    def test_links(self):
        tree = parse_source(FULL)
        link = tree.links[0]
        assert (link.a_component, link.a_port) == ("router", "hub")
        assert (link.b_component, link.b_port) == ("shard", "head")

    def test_positions_recorded(self):
        tree = parse_source(FULL)
        assert tree.components[0].line > 1


class TestErrors:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("", "expected 'topology'"),
            ("topology {}", "topology name"),
            ("topology T {", "unexpected end of input"),
            ("topology T { component }", "component name"),
            ("topology T { component a ring }", "':'"),
            ("topology T { component a : }", "shape name"),
            ("topology T { component a : ring( }", "parameter name"),
            ("topology T { component a : ring(size 4) }", "'='"),
            ("topology T { component a : ring(size = ) }", "value"),
            ("topology T { component a : ring { port } }", "port name"),
            ("topology T { component a : ring { port p } }", "':'"),
            ("topology T { link a.b }", "'--'"),
            ("topology T { link a -- b.c }", "'.'"),
            ("topology T { nodes many }", "node count"),
            ("topology T { bogus }", "expected component, link"),
            ("topology T { nodes 4 nodes 5 }", "duplicate 'nodes'"),
            ("topology T { assign a assign b }", "duplicate 'assign'"),
            ("topology T { } extra", "end of input"),
            ("topology topology {}", "reserved word"),
        ],
    )
    def test_syntax_errors(self, source, fragment):
        with pytest.raises(DslSyntaxError, match=fragment.replace("(", "\\(")):
            parse_source(source)

    def test_error_position(self):
        try:
            parse_source("topology T {\n  component 5bad : ring\n}")
        except DslSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected syntax error")

    def test_selector_argument_must_be_int(self):
        with pytest.raises(DslSyntaxError):
            parse_source("topology T { component a : ring { port p : rank(x) } }")
