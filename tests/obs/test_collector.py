"""Collector correctness under a seeded two-component workload.

The key cross-check: the runtime's transport already counts messages
independently of the obs hooks, so ``2 * exchanges == total_messages`` per
layer is a strong end-to-end test that the hot-path counters fire exactly
once per push-pull exchange — no double counting, no missed paths.
"""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.obs.collector import Collector
from repro.obs.hooks import attach_collector

#: Layers whose step() performs a push-pull exchange through the transport.
EXCHANGE_LAYERS = (
    "peer_sampling",
    "core",
    "uo1",
    "uo2",
    "port_selection",
    "port_connection",
)


@pytest.fixture
def instrumented_pair(two_component_assembly, fast_config):
    deployment = Runtime(
        two_component_assembly, config=fast_config, seed=11
    ).deploy(24)
    collector = attach_collector(deployment, gauge_every=1)
    report = deployment.run_until_converged(max_rounds=80)
    assert report.converged
    return deployment, collector, report


class TestCounters:
    def test_exchanges_match_transport_per_layer(self, instrumented_pair):
        deployment, collector, _report = instrumented_pair
        for layer in EXCHANGE_LAYERS:
            exchanges = collector.counter("exchanges", layer=layer)
            assert exchanges > 0, layer
            # Each push-pull exchange is two messages in the byte model.
            assert 2 * exchanges == deployment.transport.total_messages(layer)

    def test_descriptor_flow_is_symmetric(self, instrumented_pair):
        _deployment, collector, _report = instrumented_pair
        for layer in EXCHANGE_LAYERS:
            sent = collector.counter("descriptors_sent", layer=layer)
            received = collector.counter("descriptors_received", layer=layer)
            # Every descriptor sent by one side is received by the other,
            # and both sides of every exchange are counted.
            assert sent == received
            assert sent > 0, layer

    def test_view_maintenance_counters(self, instrumented_pair):
        _deployment, collector, _report = instrumented_pair
        for layer in ("peer_sampling", "core", "uo1"):
            assert collector.counter("view_replacements", layer=layer) > 0
            assert collector.counter("descriptor_churn", layer=layer) > 0

    def test_counter_total_sums_layers(self, instrumented_pair):
        _deployment, collector, _report = instrumented_pair
        total = sum(
            collector.counter("exchanges", layer=layer)
            for layer in collector.layers()
        )
        assert collector.counter_total("exchanges") == total


class TestGaugesAndEvents:
    def test_structural_gauges_sampled(self, instrumented_pair):
        _deployment, collector, _report = instrumented_pair
        assert collector.gauge_value("population") == 24
        assert collector.gauge_value("population_alive") == 24
        for layer in ("peer_sampling", "uo1"):
            assert collector.gauge_value("out_degree_mean", layer=layer) > 0
            assert collector.gauge_value("in_degree_mean", layer=layer) > 0

    def test_uo2_bucket_occupancy(self, instrumented_pair):
        _deployment, collector, _report = instrumented_pair
        fill = collector.gauge_value("bucket_fill_mean", layer="uo2")
        assert fill is not None and 0 < fill <= 1.0
        assert collector.gauge_value("buckets_per_node_mean", layer="uo2") == 1

    def test_deploy_and_convergence_events(self, instrumented_pair):
        _deployment, collector, report = instrumented_pair
        kinds = [event.kind for event in collector.events]
        assert kinds[0] == "deploy"
        converged_layers = {
            event.details["layer"]
            for event in collector.events
            if event.kind == "layer_converged"
        }
        assert converged_layers == set(report.rounds)

    def test_spans_cover_every_round(self, instrumented_pair):
        _deployment, collector, report = instrumented_pair
        assert collector.spans.counts["round"] == report.executed
        assert collector.spans.counts["steps"] == report.executed
        assert collector.spans.totals["round"] >= collector.spans.totals["steps"]

    def test_unknown_kinds_are_tallied(self):
        collector = Collector(gauge_every=0)
        collector.emit("deploy")
        collector.emit("totally-novel")
        collector.emit("totally-novel")
        assert collector.unknown_kinds == {"totally-novel": 2}

    def test_snapshot_is_plain_data(self, instrumented_pair):
        import json

        _deployment, collector, _report = instrumented_pair
        snapshot = collector.snapshot()
        json.dumps(snapshot)  # must be JSON-serializable as-is
        assert snapshot["rounds_observed"] > 0
        assert snapshot["events"] == len(collector.events)


class TestGaugeSampling:
    def test_gauge_every_zero_disables_structural_sampling(
        self, two_component_assembly, fast_config
    ):
        deployment = Runtime(
            two_component_assembly, config=fast_config, seed=11
        ).deploy(24)
        collector = attach_collector(deployment, gauge_every=0)
        deployment.run(5)
        assert collector.gauge_value("population") is None
        assert collector.gauge_value("out_degree_mean", layer="uo1") is None
        # Counters and spans still flow — they are push-based.
        assert collector.counter("exchanges", layer="peer_sampling") > 0
        assert collector.spans.counts["round"] == 5
