"""Health rules and the alert lifecycle of the HealthMonitor.

Unit tests drive each rule with hand-written gauges; the scenario test pins
the acceptance contract — on a partition-and-heal run the stalled
convergence alert fires while the cut is open and clears after the heal.
"""

from __future__ import annotations

import pytest

from repro.faults.scenarios import run_partition
from repro.obs.collector import Collector
from repro.obs.events import EVENT_ALERT, EVENT_ALERT_CLEARED
from repro.obs.health import (
    ChurnSpike,
    DeadDescriptorBuildup,
    DegreeSkew,
    HealthMonitor,
    PartitionSuspicion,
    StalledConvergence,
    default_rules,
)


def _check(rule, collector, round_index=0):
    return rule.check(collector, None, round_index)


class TestStalledConvergence:
    def test_fires_after_window_without_progress_and_resets_on_progress(self):
        collector = Collector(gauge_every=0)
        rule = StalledConvergence(expected_layers=5, window=3)
        collector.gauge("layers_converged", 2)
        assert _check(rule, collector, 0) is None
        assert _check(rule, collector, 1) is None
        evidence = _check(rule, collector, 2)
        assert evidence["stalled_rounds"] == 3
        assert evidence["layers_converged"] == 2
        # Progress resets the stall counter...
        collector.gauge("layers_converged", 3)
        assert _check(rule, collector, 3) is None
        # ...and full convergence keeps it healthy forever.
        collector.gauge("layers_converged", 5)
        for round_index in range(4, 10):
            assert _check(rule, collector, round_index) is None

    def test_silent_without_convergence_telemetry(self):
        rule = StalledConvergence(window=1)
        assert _check(rule, Collector(gauge_every=0)) is None


class TestPartitionSuspicion:
    def test_fires_when_fill_collapses_below_peak(self):
        collector = Collector(gauge_every=0)
        rule = PartitionSuspicion(layer="uo2", drop_fraction=0.5, window=2)
        collector.gauge("bucket_fill_mean", 0.8, layer="uo2")
        assert _check(rule, collector) is None  # establishes the peak
        collector.gauge("bucket_fill_mean", 0.3, layer="uo2")
        assert _check(rule, collector) is None  # 1st low round
        evidence = _check(rule, collector)
        assert evidence["peak"] == 0.8
        assert evidence["low_rounds"] == 2
        # Recovery above the threshold clears the streak.
        collector.gauge("bucket_fill_mean", 0.7, layer="uo2")
        assert _check(rule, collector) is None


class TestDegreeSkew:
    def test_reports_worst_layer_over_ratio(self):
        collector = Collector(gauge_every=0)
        collector.gauge("out_degree_mean", 4.0, layer="uo1")
        collector.gauge("out_degree_max", 40.0, layer="uo1")
        collector.gauge("out_degree_mean", 4.0, layer="core")
        collector.gauge("out_degree_max", 8.0, layer="core")
        evidence = _check(DegreeSkew(max_ratio=4.0), collector)
        assert evidence["layer"] == "uo1"
        assert evidence["ratio"] == 10.0

    def test_balanced_overlay_is_healthy(self):
        collector = Collector(gauge_every=0)
        collector.gauge("out_degree_mean", 4.0, layer="uo1")
        collector.gauge("out_degree_max", 6.0, layer="uo1")
        assert _check(DegreeSkew(max_ratio=4.0), collector) is None


class TestChurnSpike:
    def test_fires_on_burst_and_clears_on_quiet_round(self):
        collector = Collector(gauge_every=0)
        rule = ChurnSpike(threshold=3)
        collector.count("node_crashes", 4)
        evidence = _check(rule, collector)
        assert evidence["losses_this_round"] == 4
        # Ongoing trickle keeps the alert, a quiet round clears it.
        collector.count("node_leaves", 1)
        assert _check(rule, collector) is not None
        assert _check(rule, collector) is None


class TestDeadDescriptorBuildup:
    def test_fires_after_sustained_high_fraction(self):
        collector = Collector(gauge_every=0)
        rule = DeadDescriptorBuildup(threshold=0.2, window=2)
        collector.gauge("dead_descriptor_fraction", 0.5)
        assert _check(rule, collector) is None
        assert _check(rule, collector)["high_rounds"] == 2
        collector.gauge("dead_descriptor_fraction", 0.1)
        assert _check(rule, collector) is None


class TestMonitorLifecycle:
    def test_alert_and_clear_events_with_gauge(self):
        collector = Collector(gauge_every=0)
        monitor = HealthMonitor(
            collector, rules=[StalledConvergence(expected_layers=5, window=2)]
        )
        collector.gauge("layers_converged", 1)
        monitor.observe(None, 0)
        assert monitor.verdict() == "healthy"
        monitor.observe(None, 1)  # window reached: fires
        assert monitor.verdict() == "critical"
        assert [e.kind for e in collector.events] == [EVENT_ALERT]
        assert collector.events[0].details["rule"] == "stalled_convergence"
        assert collector.gauge_value("alerts_active") == 1
        # Edge-triggered: staying unhealthy emits nothing new.
        monitor.observe(None, 2)
        assert len(collector.events) == 1
        # Recovery clears with the active duration as evidence.
        collector.gauge("layers_converged", 5)
        monitor.observe(None, 3)
        assert [e.kind for e in collector.events] == [
            EVENT_ALERT,
            EVENT_ALERT_CLEARED,
        ]
        assert collector.events[1].details["active_rounds"] == 2
        assert monitor.verdict() == "healthy"
        summary = monitor.summary()
        assert summary["alerts_total"] == 1
        assert summary["alerts_active"] == 0
        assert summary["alerts"][0]["round_cleared"] == 3

    def test_default_rules_cover_every_failure_mode(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "stalled_convergence",
            "partition_suspicion",
            "degree_skew",
            "churn_spike",
            "dead_descriptor_buildup",
        }


@pytest.mark.slow
class TestPartitionScenario:
    def test_stall_fires_during_partition_and_clears_after_heal(self):
        collector = Collector(gauge_every=1)
        result = run_partition(n_nodes=48, seed=1, collector=collector)
        health = result.health
        assert health is not None
        stalls = [
            alert
            for alert in health["alerts"]
            if alert["rule"] == "stalled_convergence"
        ]
        assert stalls, health["alerts"]
        fired = stalls[0]
        # Fires while the cut is open (the 20-round window), clears once
        # re-convergence resumes after the heal.
        assert fired["round_cleared"] is not None
        assert fired["round_cleared"] > fired["round_fired"]
        assert health["verdict"] == "healthy"
        assert result.report.healed
        kinds = [event.kind for event in collector.events]
        assert EVENT_ALERT in kinds and EVENT_ALERT_CLEARED in kinds
