"""Exporters: JSONL streams (including the legacy layout) and Prometheus."""

from __future__ import annotations

import json

import pytest

from repro.obs.collector import Collector
from repro.obs.export import (
    read_jsonl,
    to_jsonl,
    to_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.trace import TraceEvent


def _collector_with_traffic() -> Collector:
    collector = Collector(gauge_every=0)
    collector.emit("deploy", nodes=24)
    collector.emit("node_crash", node=3)
    collector.count("exchanges", 10, layer="uo1")
    collector.count("exchanges", 4)
    collector.gauge("population", 24)
    collector.spans.begin("round")
    collector.spans.end("round")
    return collector


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        collector = _collector_with_traffic()
        path = tmp_path / "events.jsonl"
        assert write_jsonl(str(path), collector) == 2
        events = read_jsonl(str(path))
        assert [event.kind for event in events] == ["deploy", "node_crash"]
        assert events[0].details == {"nodes": 24}

    def test_lines_are_namespaced(self):
        lines = to_jsonl(_collector_with_traffic()).splitlines()
        first = json.loads(lines[0])
        assert set(first) == {"round", "kind", "details"}

    def test_reads_legacy_flat_layout(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json.dumps({"round": 4, "kind": "node_crash", "node": 9}) + "\n",
            encoding="utf-8",
        )
        (event,) = read_jsonl(str(path))
        assert event.round == 4
        assert event.kind == "node_crash"
        assert event.details == {"node": 9}

    def test_accepts_bare_event_iterables(self):
        events = [TraceEvent(round=1, kind="heal", details={})]
        assert json.loads(to_jsonl(events))["kind"] == "heal"

    def test_empty_stream_is_empty_string(self):
        assert to_jsonl([]) == ""


class TestPrometheus:
    def test_counters_gauges_spans_exposed(self, tmp_path):
        collector = _collector_with_traffic()
        text = to_prometheus(collector)
        assert '# TYPE repro_exchanges_total counter' in text
        assert 'repro_exchanges_total{layer="uo1"} 10' in text
        assert "repro_exchanges_total 4" in text  # global: no labels
        assert "# TYPE repro_population gauge" in text
        assert 'repro_span_count{span="round"} 1' in text
        assert "repro_events_total 2" in text
        path = tmp_path / "snapshot.prom"
        write_prometheus(str(path), collector)
        assert path.read_text(encoding="utf-8") == text

    def test_metric_names_are_sanitized(self):
        collector = Collector(gauge_every=0)
        collector.count("odd-name.metric")
        assert "repro_odd_name_metric_total" in to_prometheus(collector)

    def test_hostile_layer_label_round_trips_escaped(self):
        """A label value full of exposition-format metacharacters must stay
        inside its quotes: backslashes doubled, quotes and newlines escaped,
        and the snapshot must stay one-sample-per-line."""
        hostile = 'evil"}\n\\{injected="1'
        collector = Collector(gauge_every=0)
        collector.count("exchanges", 3, layer=hostile)
        text = to_prometheus(collector)
        (sample,) = [
            line for line in text.splitlines() if line.startswith("repro_exchanges")
        ]
        assert sample == (
            'repro_exchanges_total{layer="evil\\"}\\n\\\\{injected=\\"1"} 3'
        )
        # Unescaping the quoted value recovers the original layer name.
        start = sample.index('layer="') + len('layer="')
        end = sample.rindex('"')
        recovered = (
            sample[start:end]
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        assert recovered == hostile


class TestReadErrors:
    def test_corrupt_json_line_raises_coded_error_with_location(self, tmp_path):
        from repro.errors import ReproError

        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"round": 1, "kind": "deploy", "details": {}}\n{oops\n',
            encoding="utf-8",
        )
        with pytest.raises(ReproError) as excinfo:
            read_jsonl(str(path))
        message = str(excinfo.value)
        assert f"{path}:2" in message
        assert "JSONL" in message

    def test_non_event_json_raises_coded_error(self, tmp_path):
        from repro.errors import ReproError

        path = tmp_path / "wrong.jsonl"
        path.write_text('["a", "list", "not", "an", "event"]\n', encoding="utf-8")
        with pytest.raises(ReproError) as excinfo:
            read_jsonl(str(path))
        assert f"{path}:1" in str(excinfo.value)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_jsonl(str(tmp_path / "absent.jsonl"))
