"""Bucketed distributions: the Histogram type, collector storage, exposition."""

from __future__ import annotations

import math

import pytest

from repro.obs.collector import (
    HOP_BUCKETS,
    RTT_BUCKETS,
    Collector,
    Histogram,
)
from repro.obs.export import to_prometheus


class TestHistogram:
    def test_bucketing_is_cumulative_le(self):
        histogram = Histogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.01, 0.05, 0.5, 5.0):
            histogram.record(value)
        # cumulative() yields (le_label, count<=le) with +Inf last
        assert histogram.cumulative() == [
            ("0.01", 2),  # 0.005 and the boundary value 0.01
            ("0.1", 3),
            ("1", 4),  # %g labels: 1.0 renders as "1"
            ("+Inf", 5),
        ]
        assert histogram.count == 5

    def test_mean_and_max(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 3.5):
            histogram.record(value)
        assert histogram.mean() == pytest.approx(5.5 / 3)
        assert histogram.vmax == 3.5

    def test_percentile_returns_bucket_upper_bound(self):
        histogram = Histogram(bounds=(0.01, 0.1, 1.0))
        for _ in range(99):
            histogram.record(0.005)
        histogram.record(0.5)
        assert histogram.percentile(0.50) == 0.01
        assert histogram.percentile(1.0) == 1.0

    def test_overflow_percentile_falls_back_to_observed_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.record(9.0)
        assert histogram.percentile(0.95) == 9.0

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean() == 0.0
        assert histogram.percentile(0.95) == 0.0

    def test_bounds_must_strictly_increase(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ValueError):
                Histogram(bounds=bad)

    def test_dict_round_trip(self):
        histogram = Histogram(bounds=(0.5, 2.0))
        for value in (0.1, 1.0, 10.0):
            histogram.record(value)
        clone = Histogram.from_dict(histogram.to_dict())
        assert clone.to_dict() == histogram.to_dict()
        assert clone.cumulative() == histogram.cumulative()

    def test_merge_dict_adds_counts(self):
        a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        a.record(0.5)
        b.record(1.5)
        b.record(9.0)
        a.merge_dict(b.to_dict())
        assert a.count == 3
        assert a.vmax == 9.0
        assert a.mean() == pytest.approx(11.0 / 3)

    def test_merge_dict_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge_dict(Histogram(bounds=(1.0, 3.0)).to_dict())


class TestCollectorHistograms:
    def test_histogram_method_upserts_per_layer(self):
        collector = Collector(gauge_every=0)
        collector.histogram("gossip_rtt", 0.004, layer="overlay")
        collector.histogram("gossip_rtt", 0.008, layer="overlay")
        collector.histogram("gossip_rtt", 0.004, layer="peer_sampling")
        overlay = collector.histogram_of("gossip_rtt", layer="overlay")
        assert overlay is not None and overlay.count == 2
        assert collector.histogram_of("gossip_rtt", layer="peer_sampling").count == 1
        assert collector.histogram_of("gossip_rtt", layer="nope") is None

    def test_bucket_bounds_selected_per_metric(self):
        collector = Collector(gauge_every=0)
        collector.histogram("gossip_rtt", 0.004)
        collector.histogram("announce_hops", 2)
        collector.histogram("custom_metric", 1.0)
        assert collector.histogram_of("gossip_rtt").bounds == tuple(RTT_BUCKETS)
        assert collector.histogram_of("announce_hops").bounds == tuple(HOP_BUCKETS)
        assert collector.histogram_of("custom_metric").bounds == tuple(RTT_BUCKETS)

    def test_snapshot_includes_histograms(self):
        collector = Collector(gauge_every=0)
        collector.histogram("gossip_rtt", 0.004, layer="overlay")
        snapshot = collector.snapshot()
        entries = snapshot["histograms"]
        assert len(entries) == 1
        assert entries[0]["name"] == "gossip_rtt"
        assert entries[0]["layer"] == "overlay"
        assert entries[0]["count"] == 1


class TestPrometheusHistogramExposition:
    def test_exposition_format(self):
        collector = Collector(gauge_every=0)
        collector.histogram("gossip_rtt", 0.004, layer="overlay")
        collector.histogram("gossip_rtt", 0.2, layer="overlay")
        text = to_prometheus(collector)
        assert "# TYPE repro_gossip_rtt histogram" in text
        assert 'repro_gossip_rtt_bucket{layer="overlay",le="0.005"} 1' in text
        assert 'repro_gossip_rtt_bucket{layer="overlay",le="+Inf"} 2' in text
        assert 'repro_gossip_rtt_count{layer="overlay"} 2' in text
        sum_line = next(
            line for line in text.splitlines() if "_sum" in line and "rtt" in line
        )
        assert math.isclose(float(sum_line.rsplit(" ", 1)[1]), 0.204)

    def test_bucket_counts_are_cumulative_and_monotone(self):
        collector = Collector(gauge_every=0)
        for value in (0.001, 0.003, 0.02, 0.4, 3.0):
            collector.histogram("gossip_rtt", value)
        lines = [
            line
            for line in to_prometheus(collector).splitlines()
            if line.startswith("repro_gossip_rtt_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 5  # +Inf bucket sees everything

    def test_unlabeled_histogram_has_no_layer_label(self):
        collector = Collector(gauge_every=0)
        collector.histogram("announce_hops", 2)
        text = to_prometheus(collector)
        assert 'repro_announce_hops_bucket{le="2"} 1' in text
