"""Span timing with an injectable (fake) clock."""

from __future__ import annotations

from repro.obs.spans import SpanTimer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanTimer:
    def test_begin_end_accumulates(self):
        clock = FakeClock()
        timer = SpanTimer(clock)
        timer.begin("round")
        clock.now = 2.0
        timer.end("round")
        timer.begin("round")
        clock.now = 5.0
        timer.end("round")
        assert timer.totals["round"] == 5.0
        assert timer.counts["round"] == 2
        assert timer.mean("round") == 2.5

    def test_unmatched_end_is_ignored(self):
        timer = SpanTimer(FakeClock())
        timer.end("never-begun")
        assert timer.names() == []

    def test_re_begin_restarts(self):
        clock = FakeClock()
        timer = SpanTimer(clock)
        timer.begin("steps")
        clock.now = 10.0
        timer.begin("steps")  # restart: the first begin is abandoned
        clock.now = 11.0
        timer.end("steps")
        assert timer.totals["steps"] == 1.0
        assert timer.counts["steps"] == 1

    def test_names_sorted(self):
        clock = FakeClock()
        timer = SpanTimer(clock)
        for name in ("observe", "round", "steps"):
            timer.begin(name)
            timer.end(name)
        assert timer.names() == ["observe", "round", "steps"]
