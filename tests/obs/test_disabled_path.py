"""The zero-interference contract of the disabled instrumentation path.

Telemetry must be observation only: attaching a collector may not change a
single simulation outcome, and leaving it off must leave the hot path with
nothing but one ``ctx.obs is None`` check per site. Both directions are
pinned on the perf workloads (whose digest is the canonical overlay
fingerprint) and on a full two-component deployment.
"""

from __future__ import annotations

from repro.core import Runtime
from repro.obs.collector import Collector
from repro.obs.hooks import attach_collector
from repro.perf.digest import overlay_digest
from repro.perf.workloads import run_workload, workload_matrix

RUNTIME_LAYERS = (
    "peer_sampling",
    "core",
    "uo1",
    "uo2",
    "port_selection",
    "port_connection",
)


class TestWorkloadDigests:
    def test_digest_identical_with_and_without_collector(self):
        workload = workload_matrix("ci")[0]
        baseline = run_workload(workload, seed=7)
        instrumented = run_workload(
            workload, seed=7, collector=Collector(gauge_every=1)
        )
        assert instrumented.digest == baseline.digest
        assert instrumented.messages == baseline.messages
        assert instrumented.rounds_to_converge == baseline.rounds_to_converge

    def test_shared_collector_across_cells_stays_inert(self):
        workload = workload_matrix("ci")[0]
        baseline = [run_workload(workload, seed=seed) for seed in (1, 2)]
        shared = Collector(gauge_every=0)
        again = [
            run_workload(workload, seed=seed, collector=shared)
            for seed in (1, 2)
        ]
        assert [r.digest for r in again] == [r.digest for r in baseline]


class TestDeploymentDigests:
    def test_overlays_identical_with_and_without_collector(
        self, two_component_assembly, fast_config
    ):
        def converge(with_collector: bool):
            deployment = Runtime(
                two_component_assembly, config=fast_config, seed=11
            ).deploy(24)
            if with_collector:
                attach_collector(deployment, gauge_every=1)
            report = deployment.run_until_converged(max_rounds=80)
            return deployment, report

        plain, plain_report = converge(False)
        instrumented, instrumented_report = converge(True)
        assert instrumented_report.rounds == plain_report.rounds
        assert overlay_digest(
            instrumented.network, RUNTIME_LAYERS
        ) == overlay_digest(plain.network, RUNTIME_LAYERS)
        for layer in RUNTIME_LAYERS:
            assert instrumented.transport.total_messages(
                layer
            ) == plain.transport.total_messages(layer)


class TestProvenanceDisabledPath:
    """Without a flow tracer, tracing must be *fully* off: no provenance
    tags anywhere in the overlay, and digests byte-identical to the
    uninstrumented run (a collector alone never mints tags)."""

    def test_collector_without_flow_mints_no_tags(
        self, two_component_assembly, fast_config
    ):
        deployment = Runtime(
            two_component_assembly, config=fast_config, seed=11
        ).deploy(24)
        collector = attach_collector(deployment, gauge_every=1)
        assert collector.flow is None
        deployment.run_until_converged(max_rounds=80)
        for node in deployment.network.alive_nodes():
            for _layer, protocol in node.stack():
                view = getattr(protocol, "view", None)
                if view is None:
                    continue
                for descriptor in view:
                    assert descriptor.provenance is None

    def test_flow_disabled_digest_matches_uninstrumented(self):
        workload = workload_matrix("ci")[0]
        baseline = run_workload(workload, seed=5)
        flowless = run_workload(
            workload, seed=5, collector=Collector(gauge_every=1, flow=None)
        )
        assert flowless.digest == baseline.digest
