"""The deprecated observer aliases: still importable, warn, still work."""

from __future__ import annotations

import warnings

import pytest

import repro.faults.recovery as faults_recovery
import repro.sim.controls as sim_controls
import repro.sim.trace as sim_trace
from repro.obs.instrument import Instrument
from repro.obs.recovery import RecoveryObserver as CanonicalRecoveryObserver
from repro.obs.trace import Tracer as CanonicalTracer


class TestDeprecatedAliases:
    def test_sim_trace_tracer_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="Tracer"):
            alias = sim_trace.Tracer
        assert alias is CanonicalTracer

    def test_sim_controls_observer_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="Observer"):
            alias = sim_controls.Observer
        assert alias is Instrument

    def test_faults_recovery_observer_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="RecoveryObserver"):
            alias = faults_recovery.RecoveryObserver
        assert alias is CanonicalRecoveryObserver

    def test_aliases_remain_functional(self):
        with pytest.warns(DeprecationWarning):
            tracer = sim_trace.Tracer()
        tracer.emit("deploy", nodes=3)
        assert len(tracer) == 1

    def test_unknown_attributes_still_raise(self):
        for module in (sim_trace, sim_controls, faults_recovery):
            with pytest.raises(AttributeError):
                module.definitely_not_a_name

    def test_silent_reexports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert sim_trace.TraceEvent is not None
            assert sim_controls.GraphObserver is not None
            assert faults_recovery.RecoveryReport is not None
