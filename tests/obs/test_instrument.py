"""The Instrument protocol: every method is a safe no-op by default."""

from __future__ import annotations

from repro.obs.instrument import NULL_INSTRUMENT, Instrument, NullInstrument
from repro.sim.network import Network


class TestInstrumentDefaults:
    def test_observe_never_stops(self):
        assert Instrument().observe(Network(), 0) is False

    def test_all_hooks_are_noops(self):
        instrument = Instrument()
        instrument.count("exchanges", layer="core")
        instrument.count("exchanges", 5)
        instrument.gauge("population", 12.0)
        instrument.span_begin("round")
        instrument.span_end("round")
        assert instrument.emit("deploy", nodes=3) is None

    def test_subclass_overrides_selectively(self):
        class Counting(Instrument):
            def __init__(self):
                self.total = 0

            def count(self, name, value=1, layer=""):
                self.total += value

        counting = Counting()
        counting.count("exchanges")
        counting.count("exchanges", 4, layer="uo1")
        counting.emit("ignored")  # still the base no-op
        assert counting.total == 5


class TestNullInstrument:
    def test_is_an_instrument(self):
        assert isinstance(NULL_INSTRUMENT, Instrument)
        assert isinstance(NULL_INSTRUMENT, NullInstrument)

    def test_slots_keep_it_stateless(self):
        assert not hasattr(NULL_INSTRUMENT, "__dict__")
