"""The typed event taxonomy."""

from __future__ import annotations

from repro.obs import events


class TestTaxonomy:
    def test_every_constant_is_in_the_taxonomy(self):
        constants = {
            value
            for name, value in vars(events).items()
            if name.startswith("EVENT_")
        }
        assert constants == set(events.known_kinds())

    def test_kinds_have_descriptions(self):
        for kind in events.known_kinds():
            assert events.TAXONOMY[kind], kind

    def test_is_known(self):
        assert events.is_known(events.EVENT_DEPLOY)
        assert not events.is_known("made-up-kind")

    def test_fault_plane_kinds_are_covered(self):
        # The fault plane's recorded kinds replay into collectors verbatim;
        # every one of them must be a known kind, not an "unknown" tally.
        for kind in ("partition", "heal", "pause", "resume", "degrade",
                     "restore", "zone_outage", "zone_restore", "catastrophe",
                     "rebalance"):
            assert events.is_known(kind), kind
