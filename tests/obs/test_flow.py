"""Causal propagation tracing: tagging, delivery records, critical path.

Unit tests drive a :class:`FlowTracer` by hand; the integration tests pin
the acceptance contract — on a seeded two-component deployment the derived
critical path is deterministic, and enabling tracing never perturbs the
overlay (digest identity with the untraced run).
"""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.gossip.descriptors import Descriptor, Provenance
from repro.obs.collector import Collector
from repro.obs.flow import CriticalPath, Delivery, FlowTracer
from repro.obs.hooks import attach_collector
from repro.perf.digest import overlay_digest
from repro.perf.workloads import run_workload, workload_matrix

RUNTIME_LAYERS = (
    "peer_sampling",
    "core",
    "uo1",
    "uo2",
    "port_selection",
    "port_connection",
)


class TestTagging:
    def test_advertise_stamps_origin_round_and_zero_hops(self):
        tracer = FlowTracer()
        tagged = tracer.advertise(Descriptor(7, age=0), node_id=7, round_index=3)
        assert tagged.provenance == Provenance(7, 3, 0)
        # Tagging is a copy, never a mutation, and equality ignores the tag.
        assert tagged == Descriptor(7, age=0)

    def test_on_received_increments_hops_and_passes_untagged_through(self):
        tracer = FlowTracer()
        tagged = Descriptor(1, age=2).tagged(Provenance(1, 0, 0))
        plain = Descriptor(2, age=5)
        out = tracer.on_received("uo1", 4, receiver=9, sender=5, received=[tagged, plain])
        assert out[0].provenance == Provenance(1, 0, 1)
        assert out[1].provenance is None
        assert out[1] is plain


class TestDeliveryRecords:
    def test_first_delivery_latency_and_edges(self):
        tracer = FlowTracer()
        d = Descriptor(1, age=0).tagged(Provenance(1, 0, 0))
        tracer.on_received("uo1", 3, receiver=9, sender=5, received=[d])
        assert tracer.deliveries == 1
        assert tracer.first_delivery["uo1"][(1, 9)] == Delivery(
            round=3, hops=1, sender=5, latency=3
        )
        assert tracer.flow_graph("uo1") == {(5, 9): 1}
        # A later copy of the same origin does not overwrite the first.
        tracer.on_received(
            "uo1", 8, receiver=9, sender=6,
            received=[Descriptor(1, age=0).tagged(Provenance(1, 0, 2))],
        )
        assert tracer.first_delivery["uo1"][(1, 9)].round == 3
        assert tracer.flow_graph("uo1") == {(5, 9): 1, (6, 9): 1}

    def test_own_knowledge_echoed_back_is_not_a_delivery(self):
        tracer = FlowTracer()
        echo = Descriptor(9, age=1).tagged(Provenance(9, 0, 1))
        out = tracer.on_received("uo1", 2, receiver=9, sender=5, received=[echo])
        assert tracer.deliveries == 0
        assert tracer.first_delivery.get("uo1") == {}
        # Still hop-incremented: the copy keeps travelling.
        assert out[0].provenance.hops == 2

    def test_latency_stats_percentiles(self):
        tracer = FlowTracer()
        for latency, count in ((1, 8), (2, 1), (10, 1)):
            for i in range(count):
                d = Descriptor(100 + latency * 20 + i, age=0).tagged(
                    Provenance(100 + latency * 20 + i, 0, 0)
                )
                tracer.on_received("uo1", latency, 1, 2, [d])
        stats = tracer.latency_stats("uo1")
        assert stats["count"] == 10
        assert stats["p50"] == 1
        assert stats["p95"] == 10
        assert stats["max"] == 10
        assert stats["mean"] == pytest.approx(2.0)
        assert tracer.latency_stats("nope") is None


class TestCriticalPath:
    def _feed(self, tracer, layer, origin, sender, receiver, round_index, hops):
        d = Descriptor(origin, age=0).tagged(Provenance(origin, 0, hops - 1))
        tracer.on_received(layer, round_index, receiver, sender, [d])

    def test_chain_reconstructed_backwards_through_first_receipts(self):
        tracer = FlowTracer()
        # origin 1 reaches 2 (r1), 2 relays to 3 (r2), 3 relays to 4 (r5).
        self._feed(tracer, "uo1", origin=1, sender=1, receiver=2, round_index=1, hops=1)
        self._feed(tracer, "uo1", origin=1, sender=2, receiver=3, round_index=2, hops=2)
        self._feed(tracer, "uo1", origin=1, sender=3, receiver=4, round_index=5, hops=3)
        path = tracer.critical_path("uo1")
        assert path == CriticalPath(
            layer="uo1", origin=1, receiver=4, closed_round=5, hops=3,
            path=(1, 2, 3, 4),
        )

    def test_last_closed_pair_wins_with_deterministic_tie_break(self):
        tracer = FlowTracer()
        self._feed(tracer, "uo1", origin=1, sender=1, receiver=5, round_index=4, hops=1)
        self._feed(tracer, "uo1", origin=2, sender=2, receiver=6, round_index=4, hops=1)
        # Equal closing rounds: the larger (origin, receiver) pair wins.
        assert tracer.critical_path("uo1").origin == 2
        assert tracer.critical_path("empty") is None

    def test_summary_is_plain_data(self):
        tracer = FlowTracer()
        self._feed(tracer, "uo1", origin=1, sender=1, receiver=2, round_index=1, hops=1)
        summary = tracer.summary()
        assert summary["uo1"]["deliveries"] == 1
        assert summary["uo1"]["known_pairs"] == 1
        assert summary["uo1"]["critical_path"]["path"] == (1, 2)


class TestSeededDeployment:
    def _traced_run(self, assembly, config, seed):
        deployment = Runtime(assembly, config=config, seed=seed).deploy(24)
        collector = attach_collector(deployment, gauge_every=0, flow=FlowTracer())
        report = deployment.run_until_converged(max_rounds=80)
        return deployment, collector, report

    def test_critical_path_is_deterministic_per_seed(
        self, two_component_assembly, fast_config
    ):
        _, first, report = self._traced_run(two_component_assembly, fast_config, 11)
        _, second, _ = self._traced_run(two_component_assembly, fast_config, 11)
        assert report.converged
        paths_a = {
            layer: first.flow.critical_path(layer) for layer in first.flow.layers()
        }
        paths_b = {
            layer: second.flow.critical_path(layer) for layer in second.flow.layers()
        }
        assert paths_a and paths_a == paths_b
        assert "peer_sampling" in paths_a

    def test_tracing_never_perturbs_the_overlay(
        self, two_component_assembly, fast_config
    ):
        plain = Runtime(two_component_assembly, config=fast_config, seed=11).deploy(24)
        plain_report = plain.run_until_converged(max_rounds=80)
        traced, _, traced_report = self._traced_run(
            two_component_assembly, fast_config, 11
        )
        assert traced_report.rounds == plain_report.rounds
        assert overlay_digest(traced.network, RUNTIME_LAYERS) == overlay_digest(
            plain.network, RUNTIME_LAYERS
        )

    def test_workload_digest_identical_with_tracer(self):
        workload = workload_matrix("ci")[0]
        baseline = run_workload(workload, seed=7)
        traced = run_workload(
            workload, seed=7, collector=Collector(gauge_every=0, flow=FlowTracer())
        )
        assert traced.digest == baseline.digest
