"""Cross-process flow-tracer merge: to_state / absorb_state / merge_flow_states."""

from __future__ import annotations

import json

from repro.gossip.descriptors import Descriptor, Provenance
from repro.obs.flow import Delivery, FlowTracer, merge_flow_states


def deliver(tracer, layer, round_index, receiver, sender, origin, minted=0, hops=0):
    descriptor = Descriptor(
        origin, age=0, profile=None, provenance=Provenance(origin, minted, hops)
    )
    tracer.on_received(layer, round_index, receiver, sender, [descriptor])


class TestStateDump:
    def test_state_is_json_safe_and_lossless(self):
        tracer = FlowTracer()
        deliver(tracer, "overlay", 3, receiver=1, sender=2, origin=5, minted=1)
        deliver(tracer, "overlay", 4, receiver=1, sender=2, origin=5, minted=1)
        state = json.loads(json.dumps(tracer.to_state()))
        clone = FlowTracer()
        clone.absorb_state(state)
        assert clone.deliveries == tracer.deliveries == 2
        assert clone.latency_stats("overlay") == tracer.latency_stats("overlay")
        assert clone.flow_graph("overlay") == tracer.flow_graph("overlay")
        assert clone.first_delivery == tracer.first_delivery

    def test_absorb_tolerates_missing_keys(self):
        tracer = FlowTracer()
        tracer.absorb_state({})
        tracer.absorb_state({"deliveries": 2})
        assert tracer.deliveries == 2
        assert tracer.layers() == []

    def test_absorb_adds_counts(self):
        a, b = FlowTracer(), FlowTracer()
        deliver(a, "overlay", 2, receiver=1, sender=0, origin=3)
        deliver(b, "overlay", 2, receiver=1, sender=0, origin=3)
        a.absorb_state(b.to_state())
        assert a.deliveries == 2
        assert a.flow_graph("overlay")[(0, 1)] == 2
        assert a.latency_stats("overlay")["count"] == 2

    def test_first_delivery_keeps_earliest_round_then_hops(self):
        a, b = FlowTracer(), FlowTracer()
        deliver(a, "overlay", 9, receiver=1, sender=0, origin=3, hops=4)
        deliver(b, "overlay", 2, receiver=1, sender=7, origin=3, hops=1)
        a.absorb_state(b.to_state())
        record = a.first_delivery["overlay"][(3, 1)]
        assert record.round == 2 and record.sender == 7 and record.hops == 2


class TestMergeFlowStates:
    def test_supervisor_merge_reconstructs_swarm_view(self):
        nodes = []
        for node_id in range(3):
            tracer = FlowTracer()
            deliver(
                tracer, "overlay", node_id + 1,
                receiver=node_id, sender=(node_id + 1) % 3, origin=9,
            )
            nodes.append(tracer.to_state())
        merged = merge_flow_states(nodes)
        assert merged.deliveries == 3
        assert len(merged.flow_graph("overlay")) == 3
        assert merged.critical_path("overlay") is not None

    def test_falsy_entries_skipped(self):
        tracer = FlowTracer()
        deliver(tracer, "overlay", 1, receiver=0, sender=1, origin=2)
        merged = merge_flow_states([None, {}, tracer.to_state()])
        assert merged.deliveries == 1


class TestCrossNodeLatencyClamp:
    def test_negative_skew_clamps_to_zero(self):
        """A tag minted at a faster peer's round 5 arriving during the
        receiver's round 3 must not record a negative propagation latency
        (unsynchronized per-node round counters, see docs/observability.md)."""
        tracer = FlowTracer()
        deliver(tracer, "overlay", 3, receiver=1, sender=0, origin=7, minted=5)
        stats = tracer.latency_stats("overlay")
        assert stats["mean"] == 0.0
        assert tracer.first_delivery["overlay"][(7, 1)].latency == 0

    def test_in_process_latency_unchanged(self):
        tracer = FlowTracer()
        deliver(tracer, "overlay", 6, receiver=1, sender=0, origin=7, minted=2)
        assert tracer.latency_stats("overlay")["mean"] == 4.0


def test_delivery_record_shape():
    assert Delivery(round=1, hops=2, sender=3, latency=1)._fields == (
        "round",
        "hops",
        "sender",
        "latency",
    )
