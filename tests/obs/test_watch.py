"""The dashboard renderer and the span self-time profile.

Both are pure functions of a collector, so the tests feed hand-built
telemetry and assert on the rendered text / computed rows — no engine, no
terminal.
"""

from __future__ import annotations

import random

import pytest

from repro.gossip.descriptors import Descriptor, Provenance
from repro.heal.engine import RemediationEngine
from repro.obs.collector import Collector
from repro.obs.flow import FlowTracer
from repro.obs.health import Alert, HealthMonitor, StalledConvergence
from repro.obs.watch import profile_rows, render_dashboard, render_profile


class _StubMonitor:
    """Minimal HealthMonitor surface for driving the remediation engine."""

    def __init__(self):
        self.collector = Collector(gauge_every=0)
        self.listeners = []

    def subscribe(self, listener):
        self.listeners.append(listener)

    def fire(self, rule, round_index, severity="critical"):
        alert = Alert(rule=rule, severity=severity, round_fired=round_index)
        for listener in self.listeners:
            listener(alert, True, round_index)
        return alert


def _ticking_clock(step: float = 1.0):
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


class TestDashboard:
    def test_minimal_frame_has_header_and_status(self):
        collector = Collector(gauge_every=0)
        frame = render_dashboard(collector, round_index=7)
        assert frame.startswith("repro watch — round 7\n")
        assert "population: -/-" in frame
        assert "events: 0" in frame

    def test_layer_table_rows(self):
        collector = Collector(gauge_every=0)
        collector.count("exchanges", 12, layer="uo1")
        collector.count("descriptors_sent", 60, layer="uo1")
        collector.gauge("out_degree_mean", 4.25, layer="uo1")
        collector.gauge("out_degree_max", 8, layer="uo1")
        frame = render_dashboard(collector)
        assert "layers" in frame
        assert "uo1" in frame
        assert "4.25" in frame

    def test_flow_table_shows_critical_path(self):
        flow = FlowTracer()
        tagged = Descriptor(1, age=0).tagged(Provenance(1, 0, 0))
        flow.on_received("uo1", 3, receiver=9, sender=1, received=[tagged])
        collector = Collector(gauge_every=0, flow=flow)
        frame = render_dashboard(collector)
        assert "information flow" in frame
        assert "1->9 (closed r3, 1 hops)" in frame

    def test_health_section_lists_active_alerts(self):
        collector = Collector(gauge_every=0)
        monitor = HealthMonitor(
            collector, rules=[StalledConvergence(expected_layers=5, window=1)]
        )
        collector.gauge("layers_converged", 1)
        monitor.observe(None, 4)
        frame = render_dashboard(collector, health=monitor, round_index=4)
        assert "health: critical" in frame
        assert "active alerts" in frame
        assert "stalled_convergence" in frame
        assert "expected_layers=5" in frame

    def test_healthy_monitor_renders_no_alert_table(self):
        collector = Collector(gauge_every=0)
        monitor = HealthMonitor(collector, rules=[])
        frame = render_dashboard(collector, health=monitor)
        assert "health: healthy" in frame
        assert "active alerts: none" in frame

    def test_idle_engine_renders_status_without_table(self):
        monitor = _StubMonitor()
        engine = RemediationEngine(
            deployment=None, monitor=monitor, rng=random.Random(0), actions={}
        )
        frame = render_dashboard(monitor.collector, heal=engine)
        assert "remediation: idle" in frame
        assert "actions run: 0" in frame
        assert "escalations: 0" in frame
        assert "active remediations" not in frame

    def test_remediation_panel_lists_active_incidents(self):
        monitor = _StubMonitor()
        engine = RemediationEngine(
            deployment=None, monitor=monitor, rng=random.Random(0), actions={}
        )
        monitor.fire("degree_skew", 2, severity="warning")
        frame = render_dashboard(monitor.collector, heal=engine, round_index=2)
        assert "remediation: active" in frame
        assert "active remediations" in frame
        assert "degree_skew" in frame
        assert "warning" in frame
        assert "L0" in frame  # escalation level column


class TestProfile:
    def _profiled_collector(self) -> Collector:
        """round ⊃ {steps ⊃ {layer:a, layer:b}, observe} with known totals."""
        collector = Collector(gauge_every=0, clock=_ticking_clock())
        # Nested begin/ends; each begin/end pair consumes 2 ticks, so every
        # enclosing span's total strictly exceeds its children's sum.
        collector.span_begin("round")
        collector.span_begin("steps")
        collector.span_begin("layer:a")
        collector.span_end("layer:a")
        collector.span_begin("layer:b")
        collector.span_end("layer:b")
        collector.span_end("steps")
        collector.span_begin("observe")
        collector.span_end("observe")
        collector.span_end("round")
        return collector

    def test_self_time_subtracts_direct_children(self):
        collector = self._profiled_collector()
        rows = {name: (count, total, self_s) for name, count, total, self_s in profile_rows(collector)}
        steps_count, steps_total, steps_self = rows["steps"]
        _, a_total, a_self = rows["layer:a"]
        _, b_total, b_self = rows["layer:b"]
        # Leaves own their full total.
        assert a_self == a_total and b_self == b_total
        assert steps_self == pytest.approx(steps_total - a_total - b_total)
        _, round_total, round_self = rows["round"]
        _, observe_total, _ = rows["observe"]
        assert round_self == pytest.approx(
            round_total - steps_total - observe_total
        )

    def test_act_span_nests_under_round(self):
        # The remediation step runs inside the round span; its cost must be
        # subtracted from the round's self-time like steps and observe.
        collector = Collector(gauge_every=0, clock=_ticking_clock())
        collector.span_begin("round")
        collector.span_begin("act")
        collector.span_end("act")
        collector.span_end("round")
        rows = {
            name: (total, self_s)
            for name, _count, total, self_s in profile_rows(collector)
        }
        act_total, act_self = rows["act"]
        round_total, round_self = rows["round"]
        assert act_self == act_total  # leaf owns its full total
        assert round_self == pytest.approx(round_total - act_total)

    def test_rows_sorted_by_self_time_descending(self):
        rows = profile_rows(self._profiled_collector())
        self_times = [self_s for _name, _count, _total, self_s in rows]
        assert self_times == sorted(self_times, reverse=True)

    def test_unknown_spans_count_as_their_own_self_time(self):
        collector = Collector(gauge_every=0, clock=_ticking_clock())
        collector.span_begin("custom")
        collector.span_end("custom")
        ((name, count, total, self_s),) = profile_rows(collector)
        assert name == "custom"
        assert count == 1
        assert self_s == total

    def test_render_profile_table_and_empty_fallback(self):
        text = render_profile(self._profiled_collector())
        assert "span profile (sorted by self-time)" in text
        assert "layer:a" in text
        assert "self %" in text
        assert "instrumented" in render_profile(Collector(gauge_every=0))


class TestSwarmNodesPanel:
    def node_record(self, node=0):
        from repro.obs.collector import Histogram

        rtt = Histogram()
        rtt.record(0.004)
        rtt.record(0.012)
        hops = Histogram(bounds=(1.0, 2.0, 4.0))
        hops.record(2)
        return {
            "node": node,
            "round": 9,
            "peers_known": 5,
            "wire": {"bytes_sent": 1200, "bytes_received": 900},
            "peer": {"drops": {"1": 2, "2": 1}},
            "rtt": {"overlay": rtt.to_dict()},
            "hops": hops.to_dict(),
            "lamport": 41,
        }

    def test_panel_renders_per_node_telemetry(self):
        collector = Collector(gauge_every=0)
        frame = render_dashboard(collector, nodes={0: self.node_record()})
        assert "swarm nodes" in frame
        assert "rtt ms" in frame and "lamport" in frame
        assert "1200" in frame and "900" in frame
        assert "41" in frame
        assert "8.00" in frame  # mean of 4ms and 12ms
        # all three per-peer drops summed into one cell
        lines = [line for line in frame.splitlines() if line.lstrip().startswith("0 ")]
        assert any(" 3 " in line for line in lines)

    def test_panel_tolerates_sparse_records(self):
        collector = Collector(gauge_every=0)
        frame = render_dashboard(collector, nodes={3: {"round": 1}})
        assert "swarm nodes" in frame
        assert "-" in frame  # missing rtt/hops render as dashes

    def test_no_nodes_no_panel(self):
        collector = Collector(gauge_every=0)
        assert "swarm nodes" not in render_dashboard(collector)
        assert "swarm nodes" not in render_dashboard(collector, nodes={})

    def test_nodes_sorted_by_id(self):
        collector = Collector(gauge_every=0)
        frame = render_dashboard(
            collector,
            nodes={2: self.node_record(2), 0: self.node_record(0)},
        )
        lines = frame[frame.index("swarm nodes"):].splitlines()
        node_rows = [
            index
            for index, line in enumerate(lines)
            if line.split()[:1] in (["0"], ["2"])
        ]
        first, second = node_rows
        assert lines[first].split()[0] == "0"
        assert lines[second].split()[0] == "2"
