"""CLI surface of the observability subsystem: repro obs / report / --obs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

TOPOLOGY = """
topology ObsDemo {
    nodes 24
    component ring : ring(size = 16) { port gate : lowest_id }
    component cell : clique(size = 8) { port gate : lowest_id }
    link ring.gate -- cell.gate
}
"""


@pytest.fixture
def topology_file(tmp_path):
    path = tmp_path / "demo.topo"
    path.write_text(TOPOLOGY, encoding="utf-8")
    return str(path)


class TestObsCommand:
    def test_instrumented_run_prints_telemetry(self, topology_file, capsys):
        assert main(["obs", topology_file, "--gauge-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "exchanges" in out
        assert "peer_sampling" in out
        assert "deploy" in out

    def test_exports_jsonl_and_prometheus(self, topology_file, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        prom = tmp_path / "snapshot.prom"
        assert (
            main(
                [
                    "obs",
                    topology_file,
                    "--jsonl",
                    str(jsonl),
                    "--prom",
                    str(prom),
                ]
            )
            == 0
        )
        first = json.loads(jsonl.read_text(encoding="utf-8").splitlines()[0])
        assert first["kind"] == "deploy"
        assert "repro_exchanges_total" in prom.read_text(encoding="utf-8")

    def test_summarizes_jsonl_post_mortem(self, topology_file, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        assert main(["obs", topology_file, "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["obs", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "deploy" in out
        assert "layer_converged" in out


class TestReportCommand:
    def test_consolidated_report(self, topology_file, capsys):
        assert main(["report", topology_file, "--gauge-every", "4"]) == 0
        out = capsys.readouterr().out
        # The three report families share one registry rendering.
        assert "convergence (rounds)" in out
        assert "bandwidth (bytes/node/round)" in out
        assert "counters" in out
        assert "events" in out


class TestFaultsObsFlag:
    def test_partition_scenario_writes_stream(self, tmp_path, capsys):
        jsonl = tmp_path / "faults.jsonl"
        code = main(
            [
                "faults",
                "--scenario",
                "partition",
                "--nodes",
                "48",
                "--obs",
                str(jsonl),
                "--gauge-every",
                "0",
            ]
        )
        assert code == 0
        kinds = [
            json.loads(line)["kind"]
            for line in jsonl.read_text(encoding="utf-8").splitlines()
        ]
        assert "deploy" in kinds
        assert "partition" in kinds
        assert "heal" in kinds
        assert "scenario_result" in kinds
        assert (tmp_path / "faults.jsonl.prom").exists()
