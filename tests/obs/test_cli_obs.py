"""CLI surface of the observability subsystem: repro obs / report / --obs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

TOPOLOGY = """
topology ObsDemo {
    nodes 24
    component ring : ring(size = 16) { port gate : lowest_id }
    component cell : clique(size = 8) { port gate : lowest_id }
    link ring.gate -- cell.gate
}
"""


@pytest.fixture
def topology_file(tmp_path):
    path = tmp_path / "demo.topo"
    path.write_text(TOPOLOGY, encoding="utf-8")
    return str(path)


class TestObsCommand:
    def test_instrumented_run_prints_telemetry(self, topology_file, capsys):
        assert main(["obs", topology_file, "--gauge-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "exchanges" in out
        assert "peer_sampling" in out
        assert "deploy" in out

    def test_exports_jsonl_and_prometheus(self, topology_file, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        prom = tmp_path / "snapshot.prom"
        assert (
            main(
                [
                    "obs",
                    topology_file,
                    "--jsonl",
                    str(jsonl),
                    "--prom",
                    str(prom),
                ]
            )
            == 0
        )
        first = json.loads(jsonl.read_text(encoding="utf-8").splitlines()[0])
        assert first["kind"] == "deploy"
        assert "repro_exchanges_total" in prom.read_text(encoding="utf-8")

    def test_summarizes_jsonl_post_mortem(self, topology_file, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        assert main(["obs", topology_file, "--jsonl", str(jsonl)]) == 0
        capsys.readouterr()
        assert main(["obs", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "deploy" in out
        assert "layer_converged" in out


class TestReportCommand:
    def test_consolidated_report(self, topology_file, capsys):
        assert main(["report", topology_file, "--gauge-every", "4"]) == 0
        out = capsys.readouterr().out
        # The three report families share one registry rendering.
        assert "convergence (rounds)" in out
        assert "bandwidth (bytes/node/round)" in out
        assert "counters" in out
        assert "events" in out

    def test_profile_flag_adds_self_time_section(self, topology_file, capsys):
        assert main(["report", topology_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "span profile (self-time)" in out
        assert "layer:peer_sampling" in out
        assert "self %" in out


class TestFlowFlag:
    def test_obs_flow_prints_information_flow_section(self, topology_file, capsys):
        assert main(["obs", topology_file, "--flow"]) == 0
        out = capsys.readouterr().out
        assert "information flow" in out
        assert "critical path" in out
        assert "->" in out


class TestWatchCommand:
    def test_once_renders_snapshot_and_exits_zero(self, topology_file, capsys):
        assert main(["watch", topology_file, "--once", "--gauge-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "repro watch" in out and "— round" in out
        assert "population:" in out
        assert "health:" in out
        assert "information flow" in out

    def test_once_writes_alert_stream(self, topology_file, tmp_path, capsys):
        alerts = tmp_path / "alerts.jsonl"
        assert (
            main(
                [
                    "watch",
                    topology_file,
                    "--once",
                    "--alerts",
                    str(alerts),
                ]
            )
            == 0
        )
        # A healthy converging run has no alerts; the stream still exists
        # (empty file) so operators can tail it unconditionally.
        assert alerts.exists()
        for line in alerts.read_text(encoding="utf-8").splitlines():
            assert json.loads(line)["kind"] in ("alert", "alert_cleared")


class TestErrorExits:
    def test_missing_input_file_exits_2_with_message(self, capsys):
        assert main(["obs", "/nonexistent/stream.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "stream.jsonl" in err

    def test_corrupt_jsonl_exits_2_with_line_number(self, tmp_path, capsys):
        path = tmp_path / "broken.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        assert main(["obs", str(path)]) == 2
        err = capsys.readouterr().err
        assert f"{path}:1" in err
        assert "JSONL" in err

    def test_missing_topology_exits_2(self, capsys):
        assert main(["report", "/nonexistent/demo.topo"]) == 2
        assert "error:" in capsys.readouterr().err


@pytest.mark.slow
class TestFaultsObsFlag:
    def test_partition_scenario_writes_stream(self, tmp_path, capsys):
        jsonl = tmp_path / "faults.jsonl"
        alerts = tmp_path / "alerts.jsonl"
        code = main(
            [
                "faults",
                "--scenario",
                "partition",
                "--nodes",
                "48",
                "--obs",
                str(jsonl),
                "--alerts",
                str(alerts),
                "--gauge-every",
                "1",
            ]
        )
        assert code == 0
        kinds = [
            json.loads(line)["kind"]
            for line in jsonl.read_text(encoding="utf-8").splitlines()
        ]
        assert "deploy" in kinds
        assert "partition" in kinds
        assert "heal" in kinds
        assert "scenario_result" in kinds
        assert (tmp_path / "faults.jsonl.prom").exists()
        # The health monitor rode along: the partition stalls convergence,
        # the heal clears it, and the alert stream holds both edges.
        alert_kinds = [
            json.loads(line)["kind"]
            for line in alerts.read_text(encoding="utf-8").splitlines()
        ]
        assert "alert" in alert_kinds
        assert "alert_cleared" in alert_kinds
        assert "health:" in capsys.readouterr().out
