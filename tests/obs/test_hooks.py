"""Wiring helpers and the tracers they register."""

from __future__ import annotations

from repro.core import Runtime
from repro.obs.collector import Collector
from repro.obs.hooks import attach_collector, attach_collector_to_engine
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport
from repro.sim.config import TransportCosts


class TestAttachCollector:
    def test_returns_a_fresh_collector_by_default(
        self, two_component_assembly, fast_config
    ):
        deployment = Runtime(
            two_component_assembly, config=fast_config, seed=3
        ).deploy(24)
        collector = attach_collector(deployment)
        assert isinstance(collector, Collector)
        assert deployment.engine.obs is collector
        assert collector.events[0].kind == "deploy"
        assert collector.events[0].details["nodes"] == 24

    def test_population_events_on_crash(
        self, two_component_assembly, fast_config
    ):
        deployment = Runtime(
            two_component_assembly, config=fast_config, seed=3
        ).deploy(24)
        collector = attach_collector(deployment, gauge_every=0)
        deployment.run(2)
        victim = next(iter(deployment.network.alive_ids()))
        deployment.network.kill(victim)
        deployment.run(2)
        crashes = [e for e in collector.events if e.kind == "node_crash"]
        assert [e.details["node"] for e in crashes] == [victim]
        assert collector.counter("node_crashes") == 1

    def test_shared_collector_aggregates_two_runs(
        self, two_component_assembly, fast_config
    ):
        collector = Collector(gauge_every=0)
        for seed in (3, 4):
            deployment = Runtime(
                two_component_assembly, config=fast_config, seed=seed
            ).deploy(24)
            attach_collector(deployment, collector)
            deployment.run(3)
        deploys = [e for e in collector.events if e.kind == "deploy"]
        assert len(deploys) == 2


class TestAttachCollectorToEngine:
    def test_bare_engine_gets_round_clock_and_gauges(self):
        network = Network()
        network.create_nodes(4)
        engine = Engine(network, Transport(TransportCosts()), RandomStreams(1))
        collector = attach_collector_to_engine(engine, gauge_every=1)
        engine.run_round()
        engine.run_round()
        assert collector.rounds_observed == 2
        assert collector.gauge_value("population") == 4
        event = collector.emit("heal")
        assert event.round == 2  # round clock bound to the engine
