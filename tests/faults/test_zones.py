"""Tests for zone-aware placement."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults.zones import ZoneMap
from repro.sim.network import Network


class TestZoneMap:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZoneMap([])
        with pytest.raises(ConfigurationError):
            ZoneMap(["za", "za"])

    def test_round_robin_stripes_sorted_ids(self):
        zones = ZoneMap.round_robin([3, 0, 1, 2], ["za", "zb"])
        assert zones.zone_of(0) == "za"
        assert zones.zone_of(1) == "zb"
        assert zones.zone_of(2) == "za"
        assert zones.zone_of(3) == "zb"

    def test_random_placement_is_seeded(self):
        a = ZoneMap.random_placement(range(20), ["za", "zb"], random.Random(5))
        b = ZoneMap.random_placement(range(20), ["za", "zb"], random.Random(5))
        assert all(a.zone_of(i) == b.zone_of(i) for i in range(20))

    def test_unseen_node_gets_deterministic_fallback(self):
        zones = ZoneMap.round_robin([0, 1], ["za", "zb", "zc"])
        assert 99 not in zones
        assert zones.zone_of(99) == zones.zone_names[99 % 3]
        assert 99 in zones  # memoized after first lookup

    def test_members(self):
        zones = ZoneMap.round_robin(range(6), ["za", "zb"])
        assert zones.members("za") == [0, 2, 4]
        assert zones.members("za", node_ids=[0, 1, 2]) == [0, 2]
        with pytest.raises(ConfigurationError):
            zones.members("nope")

    def test_annotate_stamps_attributes(self):
        net = Network()
        net.create_nodes(4)
        zones = ZoneMap.round_robin(net.node_ids(), ["za", "zb"])
        zones.annotate(net)
        assert net.node(0).attributes["zone"] == "za"
        assert net.node(3).attributes["zone"] == "zb"
