"""Tests for the self-healing verification machinery."""

from __future__ import annotations

from repro.faults.plane import FaultEvent, FaultPlane
from repro.obs.recovery import EventRecovery, RecoveryObserver
from repro.gossip.views import PartialView
from repro.metrics.recovery import cross_island_fraction, dead_descriptor_fraction
from repro.sim.network import Network


class ScriptedObserver(RecoveryObserver):
    """Observer with a scripted predicate series (no real deployment)."""

    def __init__(self, plane, script):
        super().__init__(
            plane,
            assembly_provider=lambda: None,
            role_map_provider=lambda: None,
            uo1_view_size=8,
            layers=sorted(script),
        )
        self.script = script

    def _predicate(self, layer, network):
        return self.script[layer][len(self.rounds) - 1]


def run_script(plane, script):
    observer = ScriptedObserver(plane, script)
    network = Network()
    n_rounds = len(next(iter(script.values())))
    for round_index in range(n_rounds):
        observer.observe(network, round_index)
    return observer.report()


class TestEventRecovery:
    def test_repaired_and_slowest(self):
        recovery = EventRecovery(
            event=FaultEvent(3, "heal"),
            repair_rounds={"core": 4, "uo1": 9},
        )
        assert recovery.repaired
        assert recovery.slowest_repair == 9

    def test_unrepaired(self):
        recovery = EventRecovery(
            event=FaultEvent(3, "heal"),
            repair_rounds={"core": 4, "uo1": None},
        )
        assert not recovery.repaired
        assert recovery.slowest_repair is None


class TestRecoveryReport:
    def make_report(self):
        plane = FaultPlane()
        plane.record_event(2, "partition")
        plane.record_event(5, "heal")
        #          round:  0     1     2      3      4     5      6     7
        script = {
            "core": [True, True, False, False, True, False, False, True],
            "uo1":  [True, True, False, True,  True, False, True,  True],
        }
        return run_script(plane, script)

    def test_time_to_repair_relative_to_event(self):
        report = self.make_report()
        # After the partition at r2: core first True at r4, uo1 at r3.
        assert report.time_to_repair("partition", "core") == 2
        assert report.time_to_repair("partition", "uo1") == 1
        # After the heal at r5: core at r7, uo1 at r6.
        assert report.time_to_repair("heal", "core") == 2
        assert report.time_to_repair("heal", "uo1") == 1
        assert report.time_to_repair("nope", "core") is None

    def test_partition_merge_is_slowest_of_uo1_and_core(self):
        report = self.make_report()
        assert report.partition_merge_rounds == 2

    def test_healed_is_final_state(self):
        report = self.make_report()
        assert report.healed
        assert report.final_converged == {"core": True, "uo1": True}

    def test_never_repaired_layer(self):
        plane = FaultPlane()
        plane.record_event(0, "heal")
        report = run_script(
            plane, {"core": [False, False, False], "uo1": [True, True, True]}
        )
        assert report.time_to_repair("heal", "core") is None
        assert report.partition_merge_rounds is None
        assert not report.healed
        assert not report.recoveries[0].repaired

    def test_render_mentions_events_and_final_state(self):
        rendered = self.make_report().render()
        assert "time-to-repair" in rendered
        assert "r5 heal" in rendered
        assert "core=ok" in rendered
        assert "partition merge" in rendered
        unhealed = run_script(
            FaultPlane(), {"core": [False], "uo1": [False]}
        ).render()
        assert "NOT CONVERGED" in unhealed


class FakeViewProtocol:
    def __init__(self, peer_ids):
        self.view = PartialView(16)
        self._peers = list(peer_ids)

    def neighbors(self):
        return list(self._peers)


class TestHygieneMetrics:
    def test_dead_descriptor_fraction(self):
        net = Network()
        net.create_nodes(4)
        net.node(0).attach("uo1", FakeViewProtocol([1, 2, 3]))
        net.node(1).attach("uo1", FakeViewProtocol([0]))
        net.kill(3)
        # Live views hold 4 entries total; exactly one (0 -> 3) is dead.
        assert dead_descriptor_fraction(net, layers=["uo1"]) == 0.25

    def test_dead_fraction_empty_network(self):
        assert dead_descriptor_fraction(Network()) == 0.0

    def test_cross_island_fraction(self):
        net = Network()
        net.create_nodes(4)
        net.node(0).attach("uo1", FakeViewProtocol([1, 2]))
        net.node(2).attach("uo1", FakeViewProtocol([3]))
        island_of = {0: 0, 1: 0, 2: 1, 3: 1}
        # Entries: 0->1 (intra), 0->2 (cross), 2->3 (intra).
        assert cross_island_fraction(net, island_of) == 1 / 3
