"""Tests for the fault-injection controls."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults.controls import (
    LinkDegradation,
    Partition,
    PauseResume,
    ZoneOutage,
)
from repro.faults.plane import FaultPlane, LinkQuality
from repro.faults.zones import ZoneMap
from repro.gossip.views import PartialView
from repro.sim.network import Network


class FakeGossip:
    """Just enough protocol surface for rendezvous re-seeding."""

    def __init__(self, capacity=8):
        self.view = PartialView(capacity)


def make_network(count, with_views=False):
    net = Network()
    for node in net.create_nodes(count):
        if with_views:
            node.attach("peer_sampling", FakeGossip())
    return net


class TestPartitionValidation:
    def test_window(self):
        plane = FaultPlane()
        with pytest.raises(ConfigurationError):
            Partition(plane, at_round=-1, heal_round=5, rng=random.Random(0))
        with pytest.raises(ConfigurationError):
            Partition(plane, at_round=5, heal_round=5, rng=random.Random(0))

    def test_needs_rng_or_custom_split(self):
        with pytest.raises(ConfigurationError):
            Partition(FaultPlane(), at_round=0, heal_round=5)

    def test_islands_floor(self):
        with pytest.raises(ConfigurationError):
            Partition(
                FaultPlane(), at_round=0, heal_round=5,
                islands=1, rng=random.Random(0),
            )

    def test_rendezvous_validation(self):
        with pytest.raises(ConfigurationError):
            Partition(
                FaultPlane(), at_round=0, heal_round=5,
                rng=random.Random(0), rendezvous=-1,
            )
        # A custom split without an rng cannot re-seed at heal time.
        with pytest.raises(ConfigurationError):
            Partition(
                FaultPlane(), at_round=0, heal_round=5,
                island_of=lambda ids: {nid: nid % 2 for nid in ids},
            )


class TestPartitionLifecycle:
    def test_fires_and_heals_on_schedule(self):
        plane = FaultPlane()
        net = make_network(8)
        control = Partition(
            plane, at_round=1, heal_round=3, rng=random.Random(0), rendezvous=0
        )
        control.before_round(net, 0)
        assert not control.fired and not plane.partition_active
        control.before_round(net, 1)
        assert control.fired and control.active
        assert plane.partition_active
        islands = plane.islands()
        assert len(islands) == 2
        assert sum(len(island) for island in islands) == 8
        control.before_round(net, 2)
        assert plane.partition_active
        control.before_round(net, 3)
        assert control.healed and not control.active
        assert not plane.partition_active
        assert [event.kind for event in plane.events] == ["partition", "heal"]

    def test_custom_split(self):
        plane = FaultPlane()
        net = make_network(6)
        control = Partition(
            plane,
            at_round=0,
            heal_round=9,
            island_of=lambda ids: {nid: nid % 3 for nid in ids},
            rendezvous=0,
        )
        control.before_round(net, 0)
        assert len(plane.islands()) == 3
        assert not plane.reachable(0, 1)
        assert plane.reachable(0, 3)

    def test_rendezvous_seeds_cross_island_contacts(self):
        plane = FaultPlane()
        net = make_network(10, with_views=True)
        control = Partition(
            plane, at_round=0, heal_round=2, rng=random.Random(3), rendezvous=2
        )
        control.before_round(net, 0)
        island_of = {
            node_id: index
            for index, members in enumerate(plane.islands())
            for node_id in members
        }
        control.before_round(net, 2)
        seeded = [
            (node.node_id, descriptor)
            for node in net.nodes()
            for descriptor in node.protocol("peer_sampling").view
        ]
        # Two seeds per island, each pointing across the former cut.
        assert len(seeded) == 4
        for node_id, descriptor in seeded:
            assert island_of[node_id] != island_of[descriptor.node_id]
            assert descriptor.age == 0
        assert "rendezvous=4" in plane.events_of("heal")[0].detail

    def test_rendezvous_zero_leaves_views_untouched(self):
        plane = FaultPlane()
        net = make_network(6, with_views=True)
        control = Partition(
            plane, at_round=0, heal_round=1, rng=random.Random(0), rendezvous=0
        )
        control.before_round(net, 0)
        control.before_round(net, 1)
        assert all(
            len(node.protocol("peer_sampling").view) == 0 for node in net.nodes()
        )
        assert "rendezvous=0" in plane.events_of("heal")[0].detail

    def test_heal_is_idempotent_under_double_fire(self):
        # A remediation engine may drive the heal path again after the
        # scheduled heal already ran; the second call must change nothing.
        plane = FaultPlane()
        net = make_network(10, with_views=True)
        control = Partition(
            plane, at_round=0, heal_round=2, rng=random.Random(3), rendezvous=2
        )
        control.before_round(net, 0)
        control.before_round(net, 2)
        seeded = {
            node.node_id: sorted(node.protocol("peer_sampling").view.ids())
            for node in net.nodes()
        }
        assert control.heal(net, 5) == 0  # direct re-invocation: no-op
        control.before_round(net, 6)  # schedule path re-entered: still no-op
        after = {
            node.node_id: sorted(node.protocol("peer_sampling").view.ids())
            for node in net.nodes()
        }
        assert after == seeded  # no double re-seed
        assert len(plane.events_of("heal")) == 1
        assert not plane.partition_active

    def test_heal_before_fire_is_a_no_op(self):
        plane = FaultPlane()
        net = make_network(6, with_views=True)
        control = Partition(
            plane, at_round=5, heal_round=8, rng=random.Random(0), rendezvous=2
        )
        assert control.heal(net, 0) == 0  # nothing fired yet
        assert plane.events == []


class TestZoneOutage:
    def make_zone_plane(self, count=8):
        net = make_network(count)
        zones = ZoneMap.round_robin(net.node_ids(), ["za", "zb"])
        return net, FaultPlane(zones=zones)

    def test_needs_zone_map(self):
        with pytest.raises(ConfigurationError):
            ZoneOutage(FaultPlane(), zone="za", at_round=0)

    def test_mode_validation(self):
        _, plane = self.make_zone_plane()
        with pytest.raises(ConfigurationError):
            ZoneOutage(plane, zone="za", at_round=0, mode="explode")
        with pytest.raises(ConfigurationError):
            ZoneOutage(plane, zone="za", at_round=0, mode="pause")
        with pytest.raises(ConfigurationError):
            ZoneOutage(plane, zone="za", at_round=0, mode="kill", restore_round=5)

    def test_kill_takes_whole_zone_down(self):
        net, plane = self.make_zone_plane(8)
        control = ZoneOutage(plane, zone="za", at_round=2, mode="kill")
        control.before_round(net, 0)
        assert net.alive_count() == 8
        control.before_round(net, 2)
        assert control.victims == [0, 2, 4, 6]
        assert net.alive_count() == 4
        assert all(net.is_alive(node_id) for node_id in (1, 3, 5, 7))
        assert plane.events_of("zone_kill")

    def test_pause_revives_zombies(self):
        net, plane = self.make_zone_plane(8)
        control = ZoneOutage(
            plane, zone="zb", at_round=0, mode="pause", restore_round=3
        )
        control.before_round(net, 0)
        assert net.alive_count() == 4
        control.before_round(net, 3)
        assert net.alive_count() == 8
        assert plane.events_of("zone_restore")[0].detail.endswith("revived=4")


class TestPauseResume:
    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            PauseResume(
                FaultPlane(), random.Random(0),
                at_round=0, resume_round=5, fraction=0.0,
            )

    def test_pause_then_resume(self):
        plane = FaultPlane()
        net = make_network(20)
        control = PauseResume(
            plane, random.Random(1),
            at_round=1, resume_round=4, fraction=0.5, min_population=4,
        )
        control.before_round(net, 1)
        assert len(control.paused) == 10
        assert net.alive_count() == 10
        assert all(net.node(nid).attributes.get("paused") for nid in control.paused)
        control.before_round(net, 4)
        assert net.alive_count() == 20
        assert all(
            "paused" not in net.node(nid).attributes for nid in control.paused
        )

    def test_min_population_caps_pause(self):
        control = PauseResume(
            FaultPlane(), random.Random(1),
            at_round=0, resume_round=5, fraction=0.9, min_population=8,
        )
        net = make_network(10)
        control.before_round(net, 0)
        assert net.alive_count() == 8


class TestLinkDegradation:
    def test_needs_a_scope(self):
        with pytest.raises(ConfigurationError):
            LinkDegradation(FaultPlane(), at_round=0, quality=LinkQuality(loss=0.5))

    def test_installs_and_restores_rules(self):
        zones = ZoneMap.round_robin(range(8), ["za", "zb"])
        plane = FaultPlane(zones=zones)
        net = make_network(8)
        control = LinkDegradation(
            plane,
            at_round=1,
            quality=LinkQuality(loss=0.5, latency=0.2),
            pairs=[(0, 1)],
            nodes=[2],
            zone_pairs=[("za", "zb")],
            restore_round=4,
        )
        control.before_round(net, 0)
        assert not plane.links.active
        control.before_round(net, 1)
        assert plane.quality(0, 1).loss == 0.5
        assert plane.quality(2, 7).loss == 0.5
        assert plane.quality(1, 4).loss == 0.5  # za <-> zb
        control.before_round(net, 4)
        assert not plane.links.active
        assert plane.quality(0, 1).loss == 0.0
        kinds = [event.kind for event in plane.events]
        assert kinds == ["degrade", "restore"]
