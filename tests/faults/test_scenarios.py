"""End-to-end fault scenarios: injection, recovery, and the CLI entry point.

These are the acceptance tests of the fault subsystem: a partitioned and a
decimated deployment must re-converge every layer within the documented
round budgets (see ``docs/faults.md``).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.faults.scenarios import (
    SCENARIOS,
    format_scenario,
    run_catastrophe,
    run_partition,
)

#: Documented budget: rounds from partition heal until UO1 *and* the core
#: overlay span the former cut again (observed: ~4 at 64 nodes, ~15 at 256).
PARTITION_MERGE_BUDGET = 25

#: Documented budget: rounds from a 30% kill + rebalance until every layer's
#: predicate holds again (observed: ~10 at 64-128 nodes).
CATASTROPHE_REPAIR_BUDGET = 40


@pytest.fixture(scope="module")
def partition_result():
    return run_partition(n_nodes=64, seed=1)


@pytest.mark.slow
class TestPartitionScenario:
    def test_every_layer_reconverges(self, partition_result):
        assert partition_result.healed
        assert all(partition_result.report.final_converged.values())

    def test_merge_within_documented_budget(self, partition_result):
        merge = partition_result.report.partition_merge_rounds
        assert merge is not None
        assert merge <= PARTITION_MERGE_BUDGET

    def test_cut_actually_dropped_traffic(self, partition_result):
        assert partition_result.drop_reasons.get("partition", 0) > 0

    def test_no_residual_dead_descriptors(self, partition_result):
        assert partition_result.report.residual_dead_fraction == pytest.approx(
            0.0, abs=0.05
        )

    def test_format_mentions_verdict(self, partition_result):
        text = format_scenario(partition_result)
        assert "healed: yes" in text
        assert "time-to-repair" in text


@pytest.mark.slow
class TestCatastropheScenario:
    def test_thirty_percent_kill_reconverges(self):
        result = run_catastrophe(n_nodes=64, seed=1)
        assert result.healed
        rebalance = result.report.recovery_for("rebalance")
        assert rebalance is not None
        for layer, rounds in rebalance.repair_rounds.items():
            assert rounds is not None, f"{layer} never repaired"
            assert rounds <= CATASTROPHE_REPAIR_BUDGET


class TestScenarioPlumbing:
    def test_population_floor(self):
        with pytest.raises(ConfigurationError):
            run_partition(n_nodes=16)

    def test_registry_covers_the_matrix(self):
        assert set(SCENARIOS) == {
            "partition",
            "zone-outage",
            "zone-kill",
            "catastrophe",
            "flaky-links",
            "pause-resume",
        }


class TestFaultsCli:
    @pytest.mark.slow
    def test_partition_scenario_exits_zero(self, capsys):
        assert main(["faults", "--scenario", "partition", "--nodes", "64"]) == 0
        out = capsys.readouterr().out
        assert "scenario partition" in out
        assert "time-to-repair" in out
        assert "healed: yes" in out

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["faults", "--scenario", "meteor-strike"])

    def test_rejects_tiny_population(self, capsys):
        assert main(["faults", "--scenario", "partition", "--nodes", "8"]) == 2
        assert "error" in capsys.readouterr().err
