"""Tests for the fault plane: link quality, partitions, exchange accounting."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults.plane import (
    PERFECT_LINK,
    FaultPlane,
    LinkFaults,
    LinkQuality,
    split_by_zone,
    split_islands,
)
from repro.faults.zones import ZoneMap
from repro.sim.transport import Transport


class TestLinkQuality:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkQuality(loss=1.5)
        with pytest.raises(ConfigurationError):
            LinkQuality(loss=-0.1)
        with pytest.raises(ConfigurationError):
            LinkQuality(latency=-1.0)

    def test_degraded(self):
        assert not PERFECT_LINK.degraded
        assert LinkQuality(loss=0.1).degraded
        assert LinkQuality(latency=0.5).degraded


class TestLinkFaultsPrecedence:
    def test_default_applies_when_no_rule(self):
        faults = LinkFaults()
        assert faults.quality(1, 2) == PERFECT_LINK
        assert not faults.active

    def test_pair_beats_node_and_zone(self):
        zones = ZoneMap.round_robin(range(4), ["za", "zb"])
        faults = LinkFaults()
        faults.set_zone_pair("za", "zb", LinkQuality(loss=0.3))
        faults.set_node(1, LinkQuality(loss=0.5))
        faults.set_pair(0, 1, LinkQuality(loss=0.9))
        assert faults.quality(1, 0, zones).loss == 0.9
        # Pair rules are symmetric.
        assert faults.quality(0, 1, zones).loss == 0.9

    def test_node_rule_takes_worst_of_endpoints(self):
        faults = LinkFaults()
        faults.set_node(1, LinkQuality(loss=0.5, latency=0.1))
        faults.set_node(2, LinkQuality(loss=0.2, latency=0.8))
        quality = faults.quality(1, 2)
        assert quality.loss == 0.5
        assert quality.latency == 0.8
        # A single-ended node rule applies alone.
        assert faults.quality(1, 7).loss == 0.5

    def test_node_beats_zone(self):
        zones = ZoneMap.round_robin(range(4), ["za", "zb"])
        faults = LinkFaults()
        faults.set_zone_pair("za", "zb", LinkQuality(loss=0.3))
        faults.set_node(0, LinkQuality(loss=0.7))
        assert faults.quality(0, 1, zones).loss == 0.7
        assert faults.quality(2, 1, zones).loss == 0.3

    def test_zone_rule_needs_zone_map(self):
        faults = LinkFaults()
        faults.set_zone_pair("za", "zb", LinkQuality(loss=0.3))
        # Without a zone map the rule cannot match.
        assert faults.quality(0, 1) == PERFECT_LINK

    def test_self_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkFaults().set_pair(3, 3, LinkQuality(loss=0.5))

    def test_clear_rules(self):
        faults = LinkFaults()
        faults.set_pair(0, 1, LinkQuality(loss=0.9))
        faults.set_node(2, LinkQuality(loss=0.9))
        faults.set_zone_pair("za", "zb", LinkQuality(loss=0.9))
        assert faults.active
        faults.clear()
        assert not faults.active
        assert faults.quality(0, 1) == PERFECT_LINK


class TestPartition:
    def test_set_and_clear(self):
        plane = FaultPlane()
        assert plane.reachable(1, 2)
        plane.set_partition({1: 0, 2: 1, 3: 0})
        assert plane.partition_active
        assert not plane.reachable(1, 2)
        assert plane.reachable(1, 3)
        assert plane.islands() == [[1, 3], [2]]
        plane.clear_partition()
        assert plane.reachable(1, 2)
        assert plane.islands() == []

    def test_unmapped_nodes_are_unrestricted(self):
        plane = FaultPlane()
        plane.set_partition({1: 0, 2: 1})
        # Node 9 joined mid-partition: it can talk to both islands.
        assert plane.reachable(9, 1)
        assert plane.reachable(2, 9)

    def test_empty_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlane().set_partition({})

    def test_active_short_circuit(self):
        plane = FaultPlane()
        assert not plane.active
        plane.set_partition({1: 0, 2: 1})
        assert plane.active
        plane.clear_partition()
        plane.links.set_node(1, LinkQuality(loss=0.5))
        assert plane.active


class TestExchangeOk:
    def test_partition_drop_is_accounted(self):
        plane = FaultPlane()
        plane.set_partition({1: 0, 2: 1})
        transport = Transport()
        rng = random.Random(0)
        assert not plane.exchange_ok(rng, 1, 2, transport, layer="uo1")
        assert plane.exchange_ok(rng, 1, 1, transport, layer="uo1")
        assert transport.drop_reasons() == {"partition": 1}
        assert transport.total_dropped("uo1") == 1

    def test_total_loss_always_drops(self):
        plane = FaultPlane()
        plane.links.set_pair(1, 2, LinkQuality(loss=1.0))
        transport = Transport()
        for _ in range(20):
            assert not plane.exchange_ok(random.Random(0), 1, 2, transport, "core")
        assert transport.drop_reasons() == {"loss": 20}

    def test_latency_beyond_timeout_drops(self):
        plane = FaultPlane(timeout_latency=1.0)
        plane.links.set_pair(1, 2, LinkQuality(latency=1.0))
        transport = Transport()
        assert not plane.exchange_ok(random.Random(0), 1, 2, transport, "core")
        assert transport.drop_reasons() == {"timeout": 1}

    def test_sub_timeout_latency_delays_but_delivers(self):
        plane = FaultPlane()
        plane.links.set_pair(1, 2, LinkQuality(latency=0.4))
        transport = Transport()
        assert plane.exchange_ok(random.Random(0), 1, 2, transport, "core")
        assert transport.total_delayed("core") == 1
        assert transport.mean_extra_latency("core") == pytest.approx(0.4)
        assert transport.drop_reasons() == {}

    def test_timeout_latency_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlane(timeout_latency=0.0)


class TestEventLog:
    def test_record_and_filter(self):
        plane = FaultPlane()
        plane.record_event(3, "partition", "islands=[2, 2]")
        plane.record_event(9, "heal")
        assert [event.kind for event in plane.events] == ["partition", "heal"]
        assert plane.events_of("heal")[0].round == 9
        assert "r3 partition" in str(plane.events[0])


class TestSplits:
    def test_split_islands_near_equal(self):
        mapping = split_islands(list(range(10)), 3, random.Random(1))
        sizes = sorted(
            sum(1 for island in mapping.values() if island == k) for k in range(3)
        )
        assert sizes == [3, 3, 4]
        assert set(mapping) == set(range(10))

    def test_split_islands_validation(self):
        with pytest.raises(ConfigurationError):
            split_islands([1, 2, 3], 1, random.Random(0))
        with pytest.raises(ConfigurationError):
            split_islands([1], 2, random.Random(0))

    def test_split_by_zone(self):
        zones = ZoneMap.round_robin(range(6), ["za", "zb", "zc"])
        mapping = split_by_zone(zones, list(range(6)))
        assert mapping == {0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 2}
