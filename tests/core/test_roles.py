"""Tests for node-assignment rules and role maps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblyError, TopologyError
from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.roles import (
    HashAssignment,
    ProportionalAssignment,
    Role,
    RoleMap,
    SPARE_COMPONENT,
    make_assignment,
)
from repro.shapes import make_shape


def weighted_assembly(weights):
    return Assembly(
        "W",
        [
            ComponentSpec(name=name, shape=make_shape("ring"), weight=weight)
            for name, weight in weights.items()
        ],
    )


def fixed_assembly(sizes):
    return Assembly(
        "F",
        [
            ComponentSpec(name=name, shape=make_shape("ring"), size=size)
            for name, size in sizes.items()
        ],
    )


class TestRoleMap:
    def test_members_ordered_by_rank(self):
        role_map = RoleMap(
            {
                10: Role("a", 1, 2),
                20: Role("a", 0, 2),
                30: Role("b", 0, 1),
            }
        )
        assert role_map.members("a") == [(20, 0), (10, 1)]
        assert role_map.member_ids("a") == [20, 10]
        assert role_map.component_size("a") == 2
        assert role_map.components() == ["a", "b"]
        assert role_map.node_ids() == [10, 20, 30]
        assert len(role_map) == 3

    def test_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            RoleMap({}).role(5)

    def test_has_role(self):
        role_map = RoleMap({1: Role("a", 0, 1)})
        assert role_map.has_role(1)
        assert not role_map.has_role(2)

    def test_spare_flag(self):
        assert Role(SPARE_COMPONENT, 0, 1).is_spare
        assert not Role("a", 0, 1).is_spare


class TestProportionalAssignment:
    def test_exact_split_by_weight(self):
        assembly = weighted_assembly({"a": 3, "b": 1})
        role_map = ProportionalAssignment().assign(range(40), assembly)
        assert role_map.component_size("a") == 30
        assert role_map.component_size("b") == 10

    def test_contiguous_id_slices(self):
        assembly = weighted_assembly({"a": 1, "b": 1})
        role_map = ProportionalAssignment().assign(range(10), assembly)
        assert role_map.member_ids("a") == list(range(5))
        assert role_map.member_ids("b") == list(range(5, 10))

    def test_ranks_contiguous_from_zero(self):
        assembly = weighted_assembly({"a": 2, "b": 1})
        role_map = ProportionalAssignment().assign(range(30), assembly)
        for component in ("a", "b"):
            ranks = [rank for _, rank in role_map.members(component)]
            assert ranks == list(range(len(ranks)))

    def test_fixed_sizes_honored(self):
        assembly = fixed_assembly({"a": 7, "b": 3})
        role_map = ProportionalAssignment().assign(range(10), assembly)
        assert role_map.component_size("a") == 7
        assert role_map.component_size("b") == 3

    def test_surplus_becomes_spares(self):
        assembly = fixed_assembly({"a": 4})
        role_map = ProportionalAssignment().assign(range(10), assembly)
        assert role_map.component_size("a") == 4
        assert role_map.component_size(SPARE_COMPONENT) == 6
        for node_id, _ in role_map.members(SPARE_COMPONENT):
            assert role_map.role(node_id).is_spare

    def test_mixed_fixed_and_weighted(self):
        assembly = Assembly(
            "M",
            [
                ComponentSpec(name="fixed", shape=make_shape("ring"), size=6),
                ComponentSpec(name="flex", shape=make_shape("ring"), weight=1),
            ],
        )
        role_map = ProportionalAssignment().assign(range(20), assembly)
        assert role_map.component_size("fixed") == 6
        assert role_map.component_size("flex") == 14

    def test_degraded_mode_scales_down(self):
        """Fewer live nodes than declared sizes: shrink proportionally."""
        assembly = fixed_assembly({"a": 20, "b": 10})
        role_map = ProportionalAssignment().assign(range(15), assembly)
        assert role_map.component_size("a") + role_map.component_size("b") == 15
        assert role_map.component_size("a") > role_map.component_size("b")

    def test_too_few_nodes_raises(self):
        assembly = weighted_assembly({"a": 1, "b": 1, "c": 1})
        with pytest.raises(AssemblyError):
            ProportionalAssignment().assign(range(2), assembly)

    @settings(max_examples=60, deadline=None)
    @given(
        n_nodes=st.integers(3, 120),
        weights=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=6),
    )
    def test_partition_property(self, n_nodes, weights):
        """Every node gets exactly one role; components get >= 1 node each."""
        if n_nodes < len(weights):
            return
        assembly = weighted_assembly(
            {f"c{i}": weight for i, weight in enumerate(weights)}
        )
        role_map = ProportionalAssignment().assign(range(n_nodes), assembly)
        total = sum(
            role_map.component_size(name) for name in assembly.components
        )
        assert total == n_nodes
        assert all(
            role_map.component_size(name) >= 1 for name in assembly.components
        )
        # ranks are a permutation of 0..size-1 per component
        for name in assembly.components:
            ranks = sorted(rank for _, rank in role_map.members(name))
            assert ranks == list(range(role_map.component_size(name)))


class TestHashAssignment:
    def test_quota_respected(self):
        assembly = weighted_assembly({"a": 1, "b": 1})
        role_map = HashAssignment().assign(range(20), assembly)
        assert role_map.component_size("a") == 10
        assert role_map.component_size("b") == 10

    def test_deterministic(self):
        assembly = weighted_assembly({"a": 1, "b": 1})
        first = HashAssignment().assign(range(20), assembly)
        second = HashAssignment().assign(range(20), assembly)
        assert all(first.role(i) == second.role(i) for i in range(20))

    def test_salt_changes_layout(self):
        assembly = weighted_assembly({"a": 1, "b": 1})
        base = HashAssignment(salt=0).assign(range(40), assembly)
        salted = HashAssignment(salt=1).assign(range(40), assembly)
        moved = sum(1 for i in range(40) if base.role(i) != salted.role(i))
        assert moved > 5

    def test_not_contiguous(self):
        assembly = weighted_assembly({"a": 1, "b": 1})
        role_map = HashAssignment().assign(range(40), assembly)
        # Hashing should interleave ids between components.
        a_ids = set(role_map.member_ids("a"))
        assert a_ids != set(range(20))

    def test_join_stability(self):
        """Adding one node must relocate only a bounded number of others."""
        assembly = weighted_assembly({"a": 1, "b": 1})
        before = HashAssignment().assign(range(40), assembly)
        after = HashAssignment().assign(range(41), assembly)
        moved_component = sum(
            1
            for i in range(40)
            if before.role(i).component != after.role(i).component
        )
        assert moved_component <= 3

    def test_equality_by_salt(self):
        assert HashAssignment(1) == HashAssignment(1)
        assert HashAssignment(1) != HashAssignment(2)


class TestMakeAssignment:
    def test_known_rules(self):
        assert isinstance(make_assignment("proportional"), ProportionalAssignment)
        assert isinstance(make_assignment("hash"), HashAssignment)

    def test_unknown_rule(self):
        with pytest.raises(AssemblyError, match="unknown assignment rule"):
            make_assignment("alphabetical")
