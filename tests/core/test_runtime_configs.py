"""Tests for alternative runtime configurations end-to-end."""

from __future__ import annotations

import pytest

from repro.core import Runtime, RuntimeConfig
from repro.dsl import TopologyBuilder
from repro.sim.config import GossipParams


def pair_assembly():
    builder = TopologyBuilder("Cfg")
    builder.component("ring", "ring", size=16).port("gate", "lowest_id")
    builder.component("cell", "clique", size=8).port("gate", "lowest_id")
    builder.link(("ring", "gate"), ("cell", "gate"))
    return builder.nodes(24).build()


class TestTManCore:
    def test_tman_runtime_converges(self):
        config = RuntimeConfig(core_flavor="tman")
        deployment = Runtime(pair_assembly(), config=config, seed=91).deploy()
        report = deployment.run_until_converged(80)
        assert report.converged, report.rounds

    def test_tman_reconfigures(self):
        from repro.core.reconfigure import reconfigure_and_measure

        config = RuntimeConfig(core_flavor="tman")
        deployment = Runtime(pair_assembly(), config=config, seed=92).deploy()
        deployment.run_until_converged(80)
        builder = TopologyBuilder("Cfg2")
        builder.component("star_c", "star", size=24)
        report = reconfigure_and_measure(deployment, builder.build(), 80)
        assert report.converged
        # The replacement core protocols keep the configured flavor.
        from repro.gossip.tman import TMan

        assert isinstance(deployment.network.node(0).protocol("core"), TMan)


class TestLinkedScope:
    def test_linked_uo2_scope_converges(self):
        config = RuntimeConfig(uo2_scope="linked")
        deployment = Runtime(pair_assembly(), config=config, seed=93).deploy()
        report = deployment.run_until_converged(80)
        assert report.converged

    def test_linked_scope_faster_or_equal_with_many_components(self):
        """With 10 components in a chain, covering only linked neighbours
        is a strictly easier predicate than covering all 9 others."""
        builder = TopologyBuilder("Chain")
        for index in range(10):
            builder.component(f"seg{index}", "ring", size=8).port(
                "west", "rank(0)"
            ).port("east", "rank(4)")
        for index in range(9):
            builder.link((f"seg{index}", "east"), (f"seg{index + 1}", "west"))
        assembly = builder.nodes(80).build()

        def uo2_rounds(scope):
            config = RuntimeConfig(uo2_scope=scope)
            deployment = Runtime(assembly, config=config, seed=94).deploy()
            report = deployment.run_until_converged(120)
            assert report.converged, report.rounds
            return report.round_of("uo2")

        assert uo2_rounds("linked") <= uo2_rounds("all")


class TestCustomGossipParams:
    def test_small_views_still_converge(self):
        config = RuntimeConfig(
            peer_sampling=GossipParams(view_size=8, gossip_size=4, healer=1, swapper=3),
            uo1=GossipParams(view_size=6, gossip_size=3, healer=1, swapper=2),
            core=GossipParams(view_size=8, gossip_size=4, healer=1, swapper=3),
        )
        deployment = Runtime(pair_assembly(), config=config, seed=95).deploy()
        report = deployment.run_until_converged(120)
        assert report.converged, report.rounds

    def test_uo2_contact_capacity_respected_at_three(self):
        config = RuntimeConfig(uo2_contacts_per_component=3)
        deployment = Runtime(pair_assembly(), config=config, seed=96).deploy()
        deployment.run(25)
        for node in deployment.network.alive_nodes():
            uo2 = node.protocol("uo2")
            for component in uo2.known_components():
                assert len(uo2.contacts(component)) <= 3
