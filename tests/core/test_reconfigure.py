"""Tests for dynamic reconfiguration (paper experiment iii)."""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.core.reconfigure import reconfigure, reconfigure_and_measure
from repro.dsl import TopologyBuilder


def rings_assembly(n_rings=4, size=8):
    builder = TopologyBuilder("Rings")
    east = max(1, size // 2)
    for index in range(n_rings):
        builder.component(f"ring{index}", "ring", size=size).port(
            "west", "rank(0)"
        ).port("east", f"rank({east})")
    for index in range(n_rings):
        builder.link(
            (f"ring{index}", "east"), (f"ring{(index + 1) % n_rings}", "west")
        )
    return builder.nodes(n_rings * size).build()


def star_assembly(total=32):
    builder = TopologyBuilder("BigStar")
    builder.component("hub_star", "star", size=total).port("hub", "hub")
    return builder.nodes(total).build()


class TestReconfigure:
    def test_switch_and_reconverge(self):
        deployment = Runtime(rings_assembly(), seed=41).deploy()
        first = deployment.run_until_converged(80)
        assert first.converged
        report = reconfigure_and_measure(deployment, star_assembly(), max_rounds=80)
        assert report.converged, report.rounds
        assert deployment.assembly.name == "BigStar"

    def test_roles_adopt_new_components(self):
        deployment = Runtime(rings_assembly(), seed=42).deploy()
        deployment.run(10)
        reconfigure(deployment, star_assembly())
        components = {
            deployment.role_map.role(node_id).component
            for node_id in deployment.network.node_ids()
        }
        assert components == {"hub_star"}

    def test_core_protocol_rebuilt_for_new_shape(self):
        deployment = Runtime(rings_assembly(), seed=43).deploy()
        deployment.run(5)
        old_core = deployment.network.node(0).protocol("core")
        reconfigure(deployment, star_assembly())
        new_core = deployment.network.node(0).protocol("core")
        assert new_core is not old_core

    def test_peer_sampling_state_survives(self):
        deployment = Runtime(rings_assembly(), seed=44).deploy()
        deployment.run(10)
        before = {
            node.node_id: set(node.protocol("peer_sampling").view.ids())
            for node in deployment.network.nodes()
        }
        reconfigure(deployment, star_assembly())
        after = {
            node.node_id: set(node.protocol("peer_sampling").view.ids())
            for node in deployment.network.nodes()
        }
        assert before == after

    def test_tracker_reset_on_reconfigure(self):
        deployment = Runtime(rings_assembly(), seed=45).deploy()
        deployment.run_until_converged(60)
        reconfigure(deployment, star_assembly())
        assert all(
            value is None
            for value in deployment.tracker.first_converged.values()
        )

    def test_resize_same_topology(self):
        """Growing a component family in place (the evolving-needs case)."""
        deployment = Runtime(rings_assembly(n_rings=4, size=8), seed=46).deploy()
        deployment.run_until_converged(60)
        bigger = rings_assembly(n_rings=8, size=4)
        report = reconfigure_and_measure(deployment, bigger, max_rounds=80)
        assert report.converged
        assert len(deployment.assembly.components) == 8

    def test_oversized_assembly_degrades_gracefully(self):
        """A too-big fixed size shrinks to the live population (elastic)."""
        deployment = Runtime(rings_assembly(), seed=47).deploy()  # 32 nodes
        deployment.run(2)
        builder = TopologyBuilder("TooBig")
        builder.component("huge", "ring", size=1000)
        reconfigure(deployment, builder.build())
        assert deployment.role_map.component_size("huge") == 32

    def test_unchanged_roles_still_pick_up_new_links(self):
        """Regression: a node whose role survives a reconfiguration must
        still refresh its port/link tables when the assembly adds links."""
        builder = TopologyBuilder("Hub")
        builder.component("hub_comp", "star", size=8).port("hub", "hub")
        builder.component("leaf0", "clique", size=8).port("head", "lowest_id")
        builder.link(("hub_comp", "hub"), ("leaf0", "head"))
        deployment = Runtime(builder.nodes(16).build(), seed=50).deploy(24)
        deployment.run_until_converged(60)

        grown = TopologyBuilder("Hub")
        grown.component("hub_comp", "star", size=8).port("hub", "hub")
        grown.component("leaf0", "clique", size=8).port("head", "lowest_id")
        grown.component("leaf1", "clique", size=8).port("head", "lowest_id")
        grown.link(("hub_comp", "hub"), ("leaf0", "head"))
        grown.link(("hub_comp", "hub"), ("leaf1", "head"))
        report = reconfigure_and_measure(
            deployment, grown.nodes(24).build(), max_rounds=80
        )
        assert report.converged, report.rounds
        hub = deployment.role_map.members("hub_comp")[0][0]
        connection = deployment.network.node(hub).protocol("port_connection")
        assert len(connection.links) == 2
        assert len(connection.realized_links()) == 2

    def test_shape_swap_with_same_role_rebuilds_core(self):
        """Same component name, size and ranks, different shape."""
        ring_builder = TopologyBuilder("Morph")
        ring_builder.component("comp", "ring", size=16)
        deployment = Runtime(ring_builder.nodes(16).build(), seed=51).deploy()
        deployment.run_until_converged(60)
        old_core = deployment.network.node(0).protocol("core")

        star_builder = TopologyBuilder("Morph")
        star_builder.component("comp", "star", size=16)
        report = reconfigure_and_measure(
            deployment, star_builder.nodes(16).build(), max_rounds=80
        )
        assert report.converged
        assert deployment.network.node(0).protocol("core") is not old_core

    def test_unsatisfiable_assembly_rejected(self):
        """More components than live nodes cannot be deployed at all."""
        deployment = Runtime(rings_assembly(), seed=48).deploy()  # 32 nodes
        deployment.run(2)
        builder = TopologyBuilder("TooMany")
        for index in range(40):
            builder.component(f"c{index}", "ring", size=1)
        with pytest.raises(Exception):
            reconfigure(deployment, builder.build())
