"""Tests for port specifications and selector rules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblyError
from repro.core.port import (
    HighestIdSelector,
    LowestIdSelector,
    PortSpec,
    RankSelector,
    make_selector,
)

members = st.lists(
    st.tuples(st.integers(0, 500), st.integers(0, 50)),
    min_size=1,
    max_size=30,
    unique_by=lambda pair: pair[0],
)


class TestLowestId:
    def test_choose(self):
        assert LowestIdSelector().choose([(5, 0), (2, 1), (9, 2)]) == 2

    def test_choose_empty(self):
        assert LowestIdSelector().choose([]) is None

    def test_everyone_proposes(self):
        assert LowestIdSelector().proposes(7, 3)

    @settings(max_examples=60, deadline=None)
    @given(members=members)
    def test_pairwise_merge_reaches_oracle(self, members):
        """Folding `better` over proposals must equal `choose` — the property
        that makes the epidemic election converge to the oracle outcome."""
        selector = LowestIdSelector()
        belief = members[0]
        for member in members[1:]:
            belief = selector.better(belief, member)
        assert belief[0] == selector.choose(members)


class TestHighestId:
    def test_choose(self):
        assert HighestIdSelector().choose([(5, 0), (2, 1), (9, 2)]) == 9

    @settings(max_examples=60, deadline=None)
    @given(members=members)
    def test_pairwise_merge_reaches_oracle(self, members):
        selector = HighestIdSelector()
        belief = members[0]
        for member in members[1:]:
            belief = selector.better(belief, member)
        assert belief[0] == selector.choose(members)


class TestRankSelector:
    def test_choose_finds_rank(self):
        assert RankSelector(2).choose([(10, 0), (11, 1), (12, 2)]) == 12

    def test_choose_missing_rank(self):
        assert RankSelector(9).choose([(10, 0)]) is None

    def test_only_rank_holder_proposes(self):
        selector = RankSelector(3)
        assert selector.proposes(99, 3)
        assert not selector.proposes(99, 2)

    def test_better_prefers_target_rank(self):
        selector = RankSelector(0)
        on_target = (50, 0)
        off_target = (1, 4)
        assert selector.better(on_target, off_target) == on_target
        assert selector.better(off_target, on_target) == on_target

    def test_better_tie_breaks_by_id(self):
        selector = RankSelector(0)
        assert selector.better((5, 0), (3, 0)) == (3, 0)

    def test_negative_rank_rejected(self):
        with pytest.raises(AssemblyError):
            RankSelector(-1)


class TestMakeSelector:
    def test_parses_all_forms(self):
        assert isinstance(make_selector("lowest_id"), LowestIdSelector)
        assert isinstance(make_selector("highest_id"), HighestIdSelector)
        hub = make_selector("hub")
        assert isinstance(hub, RankSelector) and hub.rank == 0
        ranked = make_selector("rank(7)")
        assert isinstance(ranked, RankSelector) and ranked.rank == 7

    def test_whitespace_tolerated(self):
        assert make_selector("  rank( 3 ) ".replace(" ", " ")).rank == 3

    def test_unknown_rejected(self):
        with pytest.raises(AssemblyError, match="unknown port selector"):
            make_selector("president")

    def test_spec_round_trip(self):
        for spec in ("lowest_id", "highest_id", "rank(4)"):
            assert make_selector(make_selector(spec).spec()).spec() == spec

    def test_hub_equals_rank_zero(self):
        assert make_selector("hub") == make_selector("rank(0)")


class TestPortSpec:
    def test_name_validation(self):
        with pytest.raises(AssemblyError):
            PortSpec("not a name")
        with pytest.raises(AssemblyError):
            PortSpec("")

    def test_default_selector(self):
        assert isinstance(PortSpec("p").selector, LowestIdSelector)
