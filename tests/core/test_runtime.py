"""Tests for runtime deployment, convergence reports, and bandwidth splits."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core import Runtime, RuntimeConfig
from repro.core.layers import RUNTIME_LAYERS
from repro.core.roles import SPARE_COMPONENT
from repro.dsl import TopologyBuilder


def pair_assembly(ring=16, cell=8):
    builder = TopologyBuilder("Pair")
    builder.component("ring", "ring", size=ring).port("gate", "lowest_id")
    builder.component("cell", "clique", size=cell).port("gate", "lowest_id")
    builder.link(("ring", "gate"), ("cell", "gate"))
    return builder.nodes(ring + cell).build()


class TestRuntimeConfig:
    def test_defaults_valid(self):
        RuntimeConfig()

    def test_bad_flavor(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(core_flavor="chord")

    def test_bad_scope(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(uo2_scope="everything")

    def test_bad_uo2_contacts(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(uo2_contacts_per_component=0)

    def test_bad_ttl(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(binding_ttl=1)


class TestDeploy:
    def test_uses_assembly_total_nodes(self):
        deployment = Runtime(pair_assembly(), seed=1).deploy()
        assert deployment.network.size() == 24

    def test_explicit_node_count_overrides(self):
        deployment = Runtime(pair_assembly(), seed=1).deploy(30)
        assert deployment.network.size() == 30

    def test_missing_node_count_raises(self):
        builder = TopologyBuilder("NoNodes")
        builder.component("a", "ring", size=4)
        assembly = builder.build()
        with pytest.raises(ConfigurationError):
            Runtime(assembly, seed=1).deploy()

    def test_too_few_nodes_raises(self):
        with pytest.raises(ConfigurationError):
            Runtime(pair_assembly(), seed=1).deploy(10)

    def test_full_stack_installed(self):
        deployment = Runtime(pair_assembly(), seed=1).deploy()
        for node in deployment.network.nodes():
            assert node.layer_names() == list(RUNTIME_LAYERS)

    def test_surplus_nodes_become_spares(self):
        deployment = Runtime(pair_assembly(), seed=1).deploy(30)
        spares = [
            node_id
            for node_id in deployment.network.node_ids()
            if deployment.role_map.role(node_id).is_spare
        ]
        assert len(spares) == 6
        assert deployment.role_map.component_size(SPARE_COMPONENT) == 6

    def test_roles_recorded_on_nodes(self):
        deployment = Runtime(pair_assembly(), seed=1).deploy()
        for node in deployment.network.nodes():
            assert node.attributes["role"] == deployment.role_map.role(node.node_id)


class TestConvergenceRuns:
    def test_run_until_converged(self):
        deployment = Runtime(pair_assembly(), seed=2).deploy()
        report = deployment.run_until_converged(max_rounds=80)
        assert report.converged
        assert report.slowest is not None
        assert all(value is not None for value in report.rounds.values())
        assert report.executed <= 80

    def test_convergence_with_spares_present(self):
        deployment = Runtime(pair_assembly(), seed=3).deploy(30)
        report = deployment.run_until_converged(max_rounds=80)
        assert report.converged

    def test_budget_exhaustion_reports_failure(self):
        deployment = Runtime(pair_assembly(), seed=2).deploy()
        report = deployment.run_until_converged(max_rounds=1)
        assert not report.converged
        assert report.slowest is None

    def test_budget_exhaustion_can_raise(self):
        from repro.errors import ConvergenceTimeout

        deployment = Runtime(pair_assembly(), seed=2).deploy()
        with pytest.raises(ConvergenceTimeout, match="core"):
            deployment.run_until_converged(max_rounds=1, raise_on_timeout=True)

    def test_run_fixed_rounds_ignores_convergence(self):
        deployment = Runtime(pair_assembly(), seed=2).deploy()
        executed = deployment.run(40)
        assert executed == 40

    def test_determinism_across_deployments(self):
        first = Runtime(pair_assembly(), seed=9).deploy()
        second = Runtime(pair_assembly(), seed=9).deploy()
        report_a = first.run_until_converged(60)
        report_b = second.run_until_converged(60)
        assert report_a.rounds == report_b.rounds

    def test_different_seeds_can_differ(self):
        reports = set()
        for seed in range(4):
            deployment = Runtime(pair_assembly(), seed=seed).deploy()
            reports.add(tuple(sorted(deployment.run_until_converged(60).rounds.items())))
        assert len(reports) > 1


class TestBandwidthSplit:
    def test_split_covers_all_layers(self):
        deployment = Runtime(pair_assembly(), seed=4).deploy()
        deployment.run(10)
        split = deployment.bandwidth_split(10)
        assert len(split["baseline"]) == 10
        assert len(split["overhead"]) == 10
        assert sum(split["baseline"]) > 0
        assert sum(split["overhead"]) > 0
        total = deployment.transport.total_bytes()
        assert sum(split["baseline"]) + sum(split["overhead"]) == total


class TestRebalance:
    def test_rebalance_after_crash_refills_ranks(self):
        deployment = Runtime(pair_assembly(), seed=5).deploy(30)  # 6 spares
        deployment.run(20)
        victims = deployment.role_map.member_ids("cell")[:3]
        for victim in victims:
            deployment.network.kill(victim)
        deployment.rebalance()
        # The clique must be back to its declared size, using spares.
        assert deployment.role_map.component_size("cell") == 8
        live_members = [
            node_id
            for node_id in deployment.role_map.member_ids("cell")
            if deployment.network.is_alive(node_id)
        ]
        assert len(live_members) == 8

    def test_rebalance_then_reconverge(self):
        deployment = Runtime(pair_assembly(), seed=6).deploy(30)
        deployment.run_until_converged(60)
        victims = deployment.role_map.member_ids("ring")[:4]
        for victim in victims:
            deployment.network.kill(victim)
        deployment.rebalance()
        deployment.tracker.reset()
        report = deployment.run_until_converged(80)
        assert report.converged

    def test_provisioner_installs_spare_stack(self):
        deployment = Runtime(pair_assembly(), seed=7).deploy()
        provision = deployment.provisioner()
        node = deployment.network.create_node()
        provision(deployment.network, node)
        assert node.layer_names() == list(RUNTIME_LAYERS)
        assert node.attributes["role"].is_spare
