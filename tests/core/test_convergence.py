"""Tests for the per-layer convergence detectors."""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.core.convergence import (
    ConvergenceReport,
    ConvergenceTracker,
    core_converged,
    core_score,
    port_connection_converged,
    port_selection_converged,
    uo1_converged,
    uo2_converged,
)
from repro.dsl import TopologyBuilder


def pair_assembly():
    builder = TopologyBuilder("Pair")
    builder.component("ring", "ring", size=12).port("gate", "lowest_id")
    builder.component("cell", "clique", size=6).port("gate", "lowest_id")
    builder.link(("ring", "gate"), ("cell", "gate"))
    return builder.nodes(18).build()


@pytest.fixture
def fresh_deployment():
    return Runtime(pair_assembly(), seed=31).deploy()


@pytest.fixture
def converged_deployment():
    deployment = Runtime(pair_assembly(), seed=31).deploy()
    report = deployment.run_until_converged(80)
    assert report.converged
    return deployment


class TestPredicatesBeforeAndAfter:
    def test_all_false_at_round_zero(self, fresh_deployment):
        deployment = fresh_deployment
        args = (deployment.network, deployment.role_map, deployment.assembly)
        assert not core_converged(*args)
        assert not uo1_converged(*args, deployment.config.uo1.view_size)
        assert not uo2_converged(*args)
        assert not port_connection_converged(*args)

    def test_all_true_after_convergence(self, converged_deployment):
        deployment = converged_deployment
        args = (deployment.network, deployment.role_map, deployment.assembly)
        assert core_converged(*args)
        assert uo1_converged(*args, deployment.config.uo1.view_size)
        assert uo2_converged(*args)
        assert port_selection_converged(*args)
        assert port_connection_converged(*args)

    def test_core_score_monotone_trend(self, fresh_deployment):
        deployment = fresh_deployment
        args = (deployment.network, deployment.role_map, deployment.assembly)
        start = core_score(*args)
        deployment.run(15)
        end = core_score(*args)
        assert 0.0 <= start <= end <= 1.0
        assert end == 1.0

    def test_core_score_zero_without_edges(self, fresh_deployment):
        deployment = fresh_deployment
        score = core_score(
            deployment.network, deployment.role_map, deployment.assembly
        )
        assert score < 0.5

    def test_killing_manager_breaks_port_selection(self, converged_deployment):
        deployment = converged_deployment
        manager = min(deployment.role_map.member_ids("ring"))
        deployment.network.kill(manager)
        args = (deployment.network, deployment.role_map, deployment.assembly)
        # The oracle moves to the next-lowest id; beliefs are now stale.
        assert not port_selection_converged(*args)
        deployment.run(12)
        assert port_selection_converged(*args)

    def test_uo2_linked_scope_less_strict(self, converged_deployment):
        deployment = converged_deployment
        args = (deployment.network, deployment.role_map, deployment.assembly)
        assert uo2_converged(*args, scope="linked")


class TestTracker:
    def test_records_first_convergence_rounds(self):
        deployment = Runtime(pair_assembly(), seed=32).deploy()
        report = deployment.run_until_converged(80)
        assert set(report.rounds) == set(ConvergenceTracker.ALL_LAYERS)
        assert all(1 <= value <= 80 for value in report.rounds.values())

    def test_reset_restarts_counting(self):
        deployment = Runtime(pair_assembly(), seed=33).deploy()
        deployment.run_until_converged(80)
        deployment.tracker.reset()
        report = deployment.tracker.report()
        assert all(value is None for value in report.rounds.values())
        report2 = deployment.run_until_converged(10)
        # Already converged: every layer reports round 1 after the reset.
        assert all(value == 1 for value in report2.rounds.values())

    def test_core_scores_recorded(self):
        deployment = Runtime(pair_assembly(), seed=34).deploy()
        deployment.run(5)
        assert len(deployment.tracker.core_scores) == 5

    def test_unknown_layer_rejected(self):
        deployment = Runtime(pair_assembly(), seed=35).deploy()
        deployment.tracker.layers = ["warp_drive"]
        deployment.tracker.reset()
        with pytest.raises(ValueError):
            deployment.run(1)


class TestReport:
    def test_empty_report_not_converged(self):
        assert not ConvergenceReport().converged

    def test_partial_report_not_converged(self):
        report = ConvergenceReport(rounds={"core": 5, "uo1": None})
        assert not report.converged
        assert report.slowest is None
        assert report.round_of("core") == 5

    def test_full_report(self):
        report = ConvergenceReport(rounds={"core": 5, "uo1": 9}, executed=12)
        assert report.converged
        assert report.slowest == 9
