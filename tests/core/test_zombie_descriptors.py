"""Regression tests: descriptors of dead nodes must age out everywhere.

The failure mode (caught by the lifecycle fuzzer): on uniform-distance
shapes, a dead low-node-id member's descriptor stays maximally attractive,
so every node that purges it re-imports it from a peer's buffer — a zombie
equilibrium that blocks core convergence forever. The cure is two-fold:
descriptors age one hop per transfer (no fresh copies can be minted for a
dead node, so the minimum age strictly climbs) and views/buffers drop
entries past ``descriptor_ttl``.
"""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.dsl import TopologyBuilder


def null_ctx():
    """A minimal RoundContext for unit-level protocol calls (no obs sink)."""
    from repro.sim.engine import RoundContext

    return RoundContext(node=None, network=None, transport=None, streams=None, round=0)


def pair_assembly():
    builder = TopologyBuilder("Zombie")
    builder.component("ring", "ring", size=12).port("gate", "lowest_id")
    builder.component("cell", "clique", size=6).port("gate", "lowest_id")
    builder.link(("ring", "gate"), ("cell", "gate"))
    return builder.build()


class TestZombieDescriptors:
    def test_dead_clique_members_age_out_of_views(self):
        """Kill the two lowest-id clique members (the most 'attractive'
        descriptors), promote spares, and require full re-convergence."""
        deployment = Runtime(pair_assembly(), seed=62128).deploy(22)
        deployment.run_until_converged(80)
        victims = sorted(deployment.role_map.member_ids("cell"))[:2]
        for victim in victims:
            deployment.network.kill(victim)
        deployment.rebalance()
        deployment.tracker.reset()
        report = deployment.run_until_converged(100)
        assert report.converged, report.rounds
        # No live node's core view may still expose the dead members.
        for node_id in deployment.role_map.member_ids("cell"):
            neighbors = deployment.network.node(node_id).protocol("core").neighbors()
            assert not (set(victims) & set(neighbors)), (
                f"node {node_id} still lists dead {victims}: {neighbors}"
            )

    def test_in_transit_aging(self):
        """Received descriptors count one hop older than they were sent."""
        from repro.gossip.descriptors import Descriptor
        from repro.gossip.selection import Proximity
        from repro.gossip.vicinity import Vicinity

        instance = Vicinity(
            0,
            profile=0,
            proximity=Proximity(lambda a, b: abs(a - b)),
            layer="v",
            random_layer=None,
        )
        instance._merge_pool(null_ctx(), [], [Descriptor(1, age=0, profile=1)])
        assert instance.view.get(1).age == 1

    def test_ttl_drops_stale_entries(self):
        from repro.gossip.descriptors import Descriptor
        from repro.gossip.selection import Proximity
        from repro.gossip.vicinity import Vicinity

        instance = Vicinity(
            0,
            profile=0,
            proximity=Proximity(lambda a, b: abs(a - b)),
            layer="v",
            random_layer=None,
            descriptor_ttl=5,
        )
        instance._merge_pool(null_ctx(), [], [Descriptor(1, age=9, profile=1)])
        assert 1 not in instance.view.ids()

    @pytest.mark.parametrize("seed", [62128, 7, 99])
    def test_randomized_churn_sequences_recover(self, seed):
        """Replays of fuzz-like operation sequences always heal."""
        import random

        rng = random.Random(seed)
        deployment = Runtime(pair_assembly(), seed=seed).deploy(22)
        for _ in range(10):
            op = rng.choice(["run", "crash", "spare", "reb"])
            if op == "run":
                deployment.run(rng.randint(1, 4))
            elif op == "crash":
                alive = deployment.network.alive_ids()
                if len(alive) > deployment.assembly.min_nodes() + 2:
                    deployment.network.kill(rng.choice(alive))
            elif op == "spare" and deployment.network.size() <= 40:
                node = deployment.network.create_node()
                deployment.provisioner()(deployment.network, node)
            elif op == "reb":
                deployment.rebalance()
        deployment.rebalance()
        deployment.tracker.layers = ["core", "uo1", "uo2"]
        deployment.tracker.reset()
        report = deployment.run_until_converged(120)
        assert report.converged, report.rounds
