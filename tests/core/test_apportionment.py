"""Property tests for quota apportionment and degraded-mode sizing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblyError
from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.roles import ProportionalAssignment, _apportion, _component_quotas
from repro.shapes import make_shape


class TestApportion:
    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(1, 500),
        weights=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=12),
    )
    def test_exact_partition_with_minimum_one(self, total, weights):
        named = {f"c{i}": weight for i, weight in enumerate(weights)}
        if total < len(named):
            with pytest.raises(AssemblyError):
                _apportion(total, named)
            return
        quotas = _apportion(total, named)
        assert sum(quotas.values()) == total
        assert all(quota >= 1 for quota in quotas.values())

    @settings(max_examples=60, deadline=None)
    @given(total=st.integers(4, 400))
    def test_equal_weights_split_evenly(self, total):
        quotas = _apportion(total, {"a": 1.0, "b": 1.0})
        assert abs(quotas["a"] - quotas["b"]) <= 1

    def test_proportionality(self):
        quotas = _apportion(100, {"big": 3.0, "small": 1.0})
        assert quotas == {"big": 75, "small": 25}

    def test_deterministic(self):
        weights = {"x": 1.7, "y": 2.3, "z": 0.9}
        assert _apportion(37, weights) == _apportion(37, weights)


class TestDegradedQuotas:
    def _assembly(self, sizes):
        return Assembly(
            "D",
            [
                ComponentSpec(name=name, shape=make_shape("ring"), size=size)
                for name, size in sizes.items()
            ],
        )

    @settings(max_examples=60, deadline=None)
    @given(
        sizes=st.lists(st.integers(2, 40), min_size=1, max_size=6),
        shrink=st.floats(0.3, 1.0),
    )
    def test_degraded_mode_partitions_whatever_is_available(self, sizes, shrink):
        named = {f"c{i}": size for i, size in enumerate(sizes)}
        assembly = self._assembly(named)
        available = max(len(named), int(sum(sizes) * shrink))
        quotas = _component_quotas(available, assembly)
        if available <= sum(sizes):
            assert sum(quotas.values()) == available
        else:
            assert quotas == named  # surplus becomes spares elsewhere
        assert all(quota >= 1 for quota in quotas.values())

    def test_degradation_preserves_proportions(self):
        assembly = self._assembly({"big": 30, "small": 10})
        quotas = _component_quotas(20, assembly)
        assert quotas["big"] == 15
        assert quotas["small"] == 5

    def test_too_few_nodes_for_components_raises(self):
        assembly = self._assembly({"a": 4, "b": 4, "c": 4})
        with pytest.raises(AssemblyError):
            _component_quotas(2, assembly)

    @settings(max_examples=40, deadline=None)
    @given(n_nodes=st.integers(2, 200))
    def test_assignment_is_total_function_of_population(self, n_nodes):
        """Any population >= the component count gets a complete role map."""
        assembly = self._assembly({"a": 16, "b": 8})
        role_map = ProportionalAssignment().assign(range(n_nodes), assembly)
        assert len(role_map) == n_nodes