"""Tests for the runtime's gossip sub-procedures (UO1, UO2, ports, core)."""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.core.layers import (
    LAYER_CORE,
    LAYER_PORT_CONNECTION,
    LAYER_PORT_SELECTION,
    LAYER_UO1,
    LAYER_UO2,
)
from repro.core.link import PortRef
from repro.dsl import TopologyBuilder


@pytest.fixture(scope="module")
def pair_deployment():
    """A ring+clique assembly, run for a fixed 30 rounds (module-scoped:
    the layer assertions below only read state)."""
    builder = TopologyBuilder("Pair")
    builder.component("ring", "ring", size=16).port("gate", "lowest_id")
    builder.component("cell", "clique", size=8).port("gate", "highest_id")
    builder.link(("ring", "gate"), ("cell", "gate"))
    assembly = builder.nodes(24).build()
    deployment = Runtime(assembly, seed=21).deploy(24)
    deployment.run(30)
    return deployment


class TestUO1:
    def test_views_only_contain_same_component(self, pair_deployment):
        deployment = pair_deployment
        for node in deployment.network.alive_nodes():
            role = deployment.role_map.role(node.node_id)
            members = set(deployment.role_map.member_ids(role.component))
            for neighbor in node.protocol(LAYER_UO1).neighbors():
                assert neighbor in members

    def test_views_saturate(self, pair_deployment):
        deployment = pair_deployment
        view_size = deployment.config.uo1.view_size
        for node in deployment.network.alive_nodes():
            role = deployment.role_map.role(node.node_id)
            needed = min(view_size, role.comp_size - 1)
            assert len(node.protocol(LAYER_UO1).neighbors()) >= needed

    def test_no_self_entries(self, pair_deployment):
        for node in pair_deployment.network.alive_nodes():
            assert node.node_id not in node.protocol(LAYER_UO1).neighbors()

    def test_set_profile_flushes_foreign_entries(self, pair_deployment):
        node = next(pair_deployment.network.alive_nodes())
        protocol = node.protocol(LAYER_UO1)
        from repro.core.profiles import NodeProfile

        original = protocol.profile
        try:
            protocol.set_profile(
                NodeProfile("elsewhere", 0, 4, 0)
            )
            assert len(protocol.view) == 0
        finally:
            protocol.set_profile(original)


class TestUO2:
    def test_contacts_cover_other_components(self, pair_deployment):
        deployment = pair_deployment
        for node in deployment.network.alive_nodes():
            role = deployment.role_map.role(node.node_id)
            other = "cell" if role.component == "ring" else "ring"
            contacts = node.protocol(LAYER_UO2).contacts(other)
            assert contacts, f"node {node.node_id} has no contact in {other}"

    def test_no_own_component_bucket(self, pair_deployment):
        deployment = pair_deployment
        for node in deployment.network.alive_nodes():
            role = deployment.role_map.role(node.node_id)
            protocol = node.protocol(LAYER_UO2)
            assert role.component not in protocol.known_components()

    def test_contacts_belong_to_claimed_component(self, pair_deployment):
        deployment = pair_deployment
        for node in deployment.network.alive_nodes():
            protocol = node.protocol(LAYER_UO2)
            for component in protocol.known_components():
                member_ids = set(deployment.role_map.member_ids(component))
                for descriptor in protocol.contacts(component):
                    assert descriptor.node_id in member_ids

    def test_bucket_capacity_respected(self, pair_deployment):
        deployment = pair_deployment
        capacity = deployment.config.uo2_contacts_per_component
        for node in deployment.network.alive_nodes():
            protocol = node.protocol(LAYER_UO2)
            for component in protocol.known_components():
                assert len(protocol.contacts(component)) <= capacity

    def test_forget(self, pair_deployment):
        node = next(pair_deployment.network.alive_nodes())
        protocol = node.protocol(LAYER_UO2)
        neighbors = protocol.neighbors()
        if neighbors:
            protocol.forget(neighbors[0])
            assert neighbors[0] not in protocol.neighbors()


class TestCoreProtocol:
    def test_ring_component_realizes_ring(self, pair_deployment):
        deployment = pair_deployment
        members = deployment.role_map.members("ring")
        rank_of = {node_id: rank for node_id, rank in members}
        shape = deployment.assembly.component("ring").shape
        adjacency = {}
        for node_id, rank in members:
            node = deployment.network.node(node_id)
            adjacency[rank] = [
                rank_of[other]
                for other in node.protocol(LAYER_CORE).neighbors()
                if other in rank_of
            ]
        assert shape.converged(adjacency, len(members))

    def test_clique_component_realizes_clique(self, pair_deployment):
        deployment = pair_deployment
        members = deployment.role_map.members("cell")
        member_ids = {node_id for node_id, _ in members}
        for node_id, _ in members:
            node = deployment.network.node(node_id)
            known = set(node.protocol(LAYER_CORE).neighbors())
            assert member_ids - {node_id} <= known

    def test_core_views_never_cross_components(self, pair_deployment):
        deployment = pair_deployment
        for node in deployment.network.alive_nodes():
            role = deployment.role_map.role(node.node_id)
            members = set(deployment.role_map.member_ids(role.component))
            for neighbor in node.protocol(LAYER_CORE).neighbors():
                assert neighbor in members


class TestPortSelection:
    def test_all_members_agree_on_oracle_manager(self, pair_deployment):
        deployment = pair_deployment
        for component, port_name in (("ring", "gate"), ("cell", "gate")):
            spec = deployment.assembly.component(component)
            members = deployment.role_map.members(component)
            expected = spec.port(port_name).selector.choose(members)
            for node_id, _ in members:
                protocol = deployment.network.node(node_id).protocol(
                    LAYER_PORT_SELECTION
                )
                assert protocol.manager_of(port_name) == expected

    def test_manager_self_awareness(self, pair_deployment):
        deployment = pair_deployment
        members = deployment.role_map.members("ring")
        expected = min(node_id for node_id, _ in members)
        protocol = deployment.network.node(expected).protocol(LAYER_PORT_SELECTION)
        assert protocol.is_manager_of("gate")

    def test_forget_reopens_election(self, pair_deployment):
        deployment = pair_deployment
        members = deployment.role_map.members("cell")
        expected = max(node_id for node_id, _ in members)
        other = next(node_id for node_id, _ in members if node_id != expected)
        protocol = deployment.network.node(other).protocol(LAYER_PORT_SELECTION)
        protocol.forget(expected)
        # The node re-proposes itself immediately (lowest available belief).
        assert protocol.manager_of("gate") is not None
        assert protocol.manager_of("gate") != expected


class TestPortConnection:
    def test_link_realized_between_oracle_managers(self, pair_deployment):
        deployment = pair_deployment
        ring_members = deployment.role_map.members("ring")
        cell_members = deployment.role_map.members("cell")
        ring_manager = min(node_id for node_id, _ in ring_members)
        cell_manager = max(node_id for node_id, _ in cell_members)
        ring_protocol = deployment.network.node(ring_manager).protocol(
            LAYER_PORT_CONNECTION
        )
        cell_protocol = deployment.network.node(cell_manager).protocol(
            LAYER_PORT_CONNECTION
        )
        assert ring_protocol.binding_for(PortRef("cell", "gate")) == cell_manager
        assert cell_protocol.binding_for(PortRef("ring", "gate")) == ring_manager

    def test_realized_links_reported(self, pair_deployment):
        deployment = pair_deployment
        ring_manager = min(
            node_id for node_id, _ in deployment.role_map.members("ring")
        )
        protocol = deployment.network.node(ring_manager).protocol(
            LAYER_PORT_CONNECTION
        )
        realized = protocol.realized_links()
        assert len(realized) == 1
        link, local_manager, remote_manager = realized[0]
        assert local_manager == ring_manager
        assert remote_manager in deployment.role_map.member_ids("cell")
        assert protocol.neighbors() == [remote_manager]

    def test_bindings_age_and_expire(self, pair_deployment):
        deployment = pair_deployment
        node = next(deployment.network.alive_nodes())
        protocol = node.protocol(LAYER_PORT_CONNECTION)
        ttl = protocol.binding_ttl
        ref = PortRef("ring", "gate")
        protocol.bindings[ref] = (999, ttl)  # one step from expiry
        protocol._age_and_expire()
        assert ref not in protocol.bindings or protocol.bindings[ref][0] != 999
