"""Tests for component specs, links, and assembly validation."""

from __future__ import annotations

import pytest

from repro.errors import AssemblyError
from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.link import LinkSpec, PortRef
from repro.core.port import PortSpec, make_selector
from repro.shapes import make_shape


def ring_component(name="ring", **kwargs):
    return ComponentSpec(name=name, shape=make_shape("ring"), **kwargs)


class TestComponentSpec:
    def test_name_validation(self):
        with pytest.raises(AssemblyError):
            ComponentSpec(name="9bad", shape=make_shape("ring"))

    def test_weight_validation(self):
        with pytest.raises(AssemblyError):
            ring_component(weight=0)
        ring_component(weight=0.5)

    def test_size_validation(self):
        with pytest.raises(AssemblyError):
            ring_component(size=0)
        assert ring_component(size=3).size == 3

    def test_fixed_size_ignores_weight_constraint(self):
        # weight is irrelevant when size is fixed; zero weight allowed then.
        spec = ring_component(size=4, weight=0)
        assert spec.size == 4

    def test_duplicate_ports_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate port"):
            ring_component(ports=(PortSpec("p"), PortSpec("p")))

    def test_port_lookup(self):
        spec = ring_component(ports=(PortSpec("a"), PortSpec("b")))
        assert spec.port("a").name == "a"
        assert spec.has_port("b")
        assert not spec.has_port("c")
        with pytest.raises(AssemblyError):
            spec.port("c")
        assert set(spec.port_map()) == {"a", "b"}

    def test_with_ports(self):
        spec = ring_component(ports=(PortSpec("a"),))
        extended = spec.with_ports(PortSpec("b"))
        assert extended.has_port("b")
        assert not spec.has_port("b")  # original untouched


class TestPortRef:
    def test_parse(self):
        ref = PortRef.parse(" ring.gate ")
        assert ref == PortRef("ring", "gate")
        assert str(ref) == "ring.gate"

    def test_parse_rejects_bad_forms(self):
        for bad in ("ring", "ring.", ".gate", "a.b.c", ""):
            with pytest.raises(AssemblyError):
                PortRef.parse(bad)

    def test_empty_fields_rejected(self):
        with pytest.raises(AssemblyError):
            PortRef("", "p")


class TestLinkSpec:
    def test_canonical_order(self):
        forward = LinkSpec(PortRef("a", "p"), PortRef("b", "q"))
        backward = LinkSpec(PortRef("b", "q"), PortRef("a", "p"))
        assert forward == backward
        assert forward.a == PortRef("a", "p")

    def test_self_link_rejected(self):
        with pytest.raises(AssemblyError):
            LinkSpec(PortRef("a", "p"), PortRef("a", "p"))

    def test_same_component_different_ports_allowed(self):
        link = LinkSpec(PortRef("a", "p"), PortRef("a", "q"))
        assert link.touches("a")

    def test_other_endpoint(self):
        link = LinkSpec(PortRef("a", "p"), PortRef("b", "q"))
        assert link.other(PortRef("a", "p")) == PortRef("b", "q")
        assert link.other(PortRef("b", "q")) == PortRef("a", "p")
        with pytest.raises(AssemblyError):
            link.other(PortRef("c", "r"))

    def test_touches(self):
        link = LinkSpec(PortRef("a", "p"), PortRef("b", "q"))
        assert link.touches("a") and link.touches("b")
        assert not link.touches("c")


class TestAssembly:
    def build_pair(self, links=()):
        return Assembly(
            "Pair",
            [
                ring_component("left", ports=(PortSpec("gate"),)),
                ring_component("right", ports=(PortSpec("gate"),)),
            ],
            links=links,
        )

    def test_requires_components(self):
        with pytest.raises(AssemblyError):
            Assembly("Empty", [])

    def test_duplicate_component_names(self):
        with pytest.raises(AssemblyError, match="duplicate component"):
            Assembly("Dup", [ring_component("x"), ring_component("x")])

    def test_duplicate_links_rejected(self):
        link = LinkSpec(PortRef("left", "gate"), PortRef("right", "gate"))
        reversed_link = LinkSpec(PortRef("right", "gate"), PortRef("left", "gate"))
        with pytest.raises(AssemblyError, match="duplicate link"):
            self.build_pair(links=[link, reversed_link])

    def test_link_to_unknown_component(self):
        with pytest.raises(AssemblyError, match="unknown component"):
            self.build_pair(
                links=[LinkSpec(PortRef("left", "gate"), PortRef("ghost", "gate"))]
            )

    def test_link_to_unknown_port(self):
        with pytest.raises(AssemblyError, match="unknown port"):
            self.build_pair(
                links=[LinkSpec(PortRef("left", "gate"), PortRef("right", "door"))]
            )

    def test_total_nodes_minimum(self):
        with pytest.raises(AssemblyError, match="at least"):
            Assembly("Tiny", [ring_component("a", size=10)], total_nodes=5)

    def test_min_nodes(self):
        assembly = Assembly(
            "M", [ring_component("a", size=10), ring_component("b")]
        )
        assert assembly.min_nodes() == 11

    def test_lookups(self):
        link = LinkSpec(PortRef("left", "gate"), PortRef("right", "gate"))
        assembly = self.build_pair(links=[link])
        assert assembly.component("left").name == "left"
        with pytest.raises(AssemblyError):
            assembly.component("ghost")
        assert assembly.links_of("left") == [link]
        assert assembly.linked_components("left") == {"right"}
        assert assembly.port(PortRef("left", "gate")).name == "gate"
        assert [name for name, _ in assembly.ports_of("left")] == ["gate"]

    def test_equality(self):
        assert self.build_pair() == self.build_pair()
        assert self.build_pair() != Assembly("Other", [ring_component("x")])
