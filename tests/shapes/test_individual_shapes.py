"""Shape-specific geometry tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.shapes import make_shape
from repro.shapes.grid import grid_dimensions
from repro.shapes.star import HUB_RANK
from repro.shapes.tree import _tree_path_length


class TestRing:
    def test_neighbors_wrap(self):
        ring = make_shape("ring")
        assert ring.target_neighbors(0, 8) == {1, 7}
        assert ring.target_neighbors(7, 8) == {6, 0}

    def test_degenerate_sizes(self):
        ring = make_shape("ring")
        assert ring.target_neighbors(0, 1) == frozenset()
        assert ring.target_neighbors(0, 2) == {1}
        assert ring.target_neighbors(0, 3) == {1, 2}

    @settings(max_examples=50, deadline=None)
    @given(size=st.integers(2, 100), a=st.integers(0, 99), b=st.integers(0, 99))
    def test_circular_distance_bounded_by_half(self, size, a, b):
        ring = make_shape("ring")
        metric = ring.metric(size)
        assert metric(a % size, b % size) <= size / 2

    def test_distance_examples(self):
        metric = make_shape("ring").metric(10)
        assert metric(0, 1) == 1
        assert metric(0, 9) == 1
        assert metric(0, 5) == 5
        assert metric(2, 7) == 5


class TestLine:
    def test_endpoints_have_one_neighbor(self):
        line = make_shape("line")
        assert line.target_neighbors(0, 5) == {1}
        assert line.target_neighbors(4, 5) == {3}
        assert line.target_neighbors(2, 5) == {1, 3}

    def test_distance_is_absolute_difference(self):
        metric = make_shape("line").metric(9)
        assert metric(0, 8) == 8


class TestStar:
    def test_hub_connects_to_all_leaves(self):
        star = make_shape("star")
        assert star.target_neighbors(HUB_RANK, 6) == {1, 2, 3, 4, 5}
        for leaf in range(1, 6):
            assert star.target_neighbors(leaf, 6) == {HUB_RANK}

    def test_metric_prefers_hub(self):
        star = make_shape("star")
        metric = star.metric(6)
        hub = star.coordinate(0, 6)
        leaf_a = star.coordinate(1, 6)
        leaf_b = star.coordinate(2, 6)
        assert metric(hub, leaf_a) < metric(leaf_a, leaf_b)

    def test_view_size_must_hold_all_leaves(self):
        star = make_shape("star")
        assert star.view_size(50, 8) >= 49

    def test_single_node_star(self):
        assert make_shape("star").target_neighbors(0, 1) == frozenset()


class TestClique:
    def test_everyone_adjacent(self):
        clique = make_shape("clique")
        assert clique.target_neighbors(2, 5) == {0, 1, 3, 4}

    def test_uniform_distance(self):
        metric = make_shape("clique").metric(5)
        assert metric(0, 4) == metric(1, 2) == 1.0

    def test_degree(self):
        assert make_shape("clique").degree(7) == 6


class TestGrid:
    def test_dimension_choice_most_square(self):
        assert grid_dimensions(12) == (3, 4)
        assert grid_dimensions(16) == (4, 4)
        assert grid_dimensions(7) == (1, 7)

    def test_explicit_rows(self):
        assert grid_dimensions(12, rows=2) == (2, 6)
        with pytest.raises(TopologyError):
            grid_dimensions(12, rows=5)

    def test_corner_and_center_neighbors(self):
        grid = make_shape("grid")  # 12 -> 3x4
        assert grid.target_neighbors(0, 12) == {1, 4}
        assert grid.target_neighbors(5, 12) == {1, 4, 6, 9}

    def test_manhattan_metric(self):
        grid = make_shape("grid")
        metric = grid.metric(12)
        assert metric(grid.coordinate(0, 12), grid.coordinate(11, 12)) == 5

    def test_degenerate_single_row(self):
        grid = make_shape("grid", rows=1)
        assert grid.target_neighbors(0, 5) == {1}


class TestTorus:
    def test_wraparound_neighbors(self):
        torus = make_shape("torus")  # 12 -> 3x4
        assert torus.target_neighbors(0, 12) == {1, 3, 4, 8}

    def test_wraparound_metric(self):
        torus = make_shape("torus")
        metric = torus.metric(12)
        top_left = torus.coordinate(0, 12)
        bottom_right = torus.coordinate(11, 12)
        assert metric(top_left, bottom_right) == 2  # wraps both dimensions

    def test_degenerate_narrow_torus(self):
        torus = make_shape("torus", rows=1)
        neighbors = torus.target_neighbors(0, 4)
        assert neighbors == {1, 3}  # no self-loop from the 1-high dimension


class TestBinaryTree:
    def test_path_length_examples(self):
        assert _tree_path_length(0, 0) == 0
        assert _tree_path_length(0, 1) == 1
        assert _tree_path_length(1, 2) == 2
        assert _tree_path_length(3, 4) == 2
        assert _tree_path_length(3, 6) == 4

    def test_parent_child_relation(self):
        tree = make_shape("tree")
        assert tree.target_neighbors(0, 7) == {1, 2}
        assert tree.target_neighbors(1, 7) == {0, 3, 4}
        assert tree.target_neighbors(6, 7) == {2}

    def test_incomplete_tree(self):
        tree = make_shape("tree")
        assert tree.target_neighbors(1, 4) == {0, 3}

    @settings(max_examples=50, deadline=None)
    @given(a=st.integers(0, 200), b=st.integers(0, 200))
    def test_path_length_symmetric(self, a, b):
        assert _tree_path_length(a, b) == _tree_path_length(b, a)

    @settings(max_examples=50, deadline=None)
    @given(a=st.integers(0, 200))
    def test_parent_distance_is_one(self, a):
        if a > 0:
            assert _tree_path_length(a, (a - 1) // 2) == 1


class TestHypercube:
    def test_size_must_be_power_of_two(self):
        cube = make_shape("hypercube")
        with pytest.raises(TopologyError):
            cube.target_neighbors(0, 6)
        cube.validate_size(8)

    def test_neighbors_differ_in_one_bit(self):
        cube = make_shape("hypercube")
        assert cube.target_neighbors(0, 8) == {1, 2, 4}
        assert cube.target_neighbors(5, 8) == {4, 7, 1}

    def test_hamming_metric(self):
        metric = make_shape("hypercube").metric(16)
        assert metric(0b0000, 0b1111) == 4
        assert metric(0b1010, 0b1000) == 1

    def test_degree_is_log2(self):
        assert make_shape("hypercube").degree(16) == 4


class TestRandomGraph:
    def test_no_target_edges(self):
        random_graph = make_shape("random", min_degree=3)
        assert random_graph.target_neighbors(0, 10) == frozenset()
        assert random_graph.target_edges(10) == set()

    def test_convergence_by_min_degree(self):
        random_graph = make_shape("random", min_degree=2)
        sparse = {rank: [(rank + 1) % 6] for rank in range(6)}
        dense = {rank: [(rank + 1) % 6, (rank + 2) % 6] for rank in range(6)}
        assert not random_graph.converged(sparse, 6)
        assert random_graph.converged(dense, 6)

    def test_min_degree_clipped_by_size(self):
        random_graph = make_shape("random", min_degree=5)
        tiny = {0: [1], 1: [0]}
        assert random_graph.converged(tiny, 2)

    def test_negative_min_degree_rejected(self):
        with pytest.raises(TopologyError):
            make_shape("random", min_degree=-1)
