"""Tests for the k-regular ring and wheel shapes."""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.dsl import TopologyBuilder
from repro.errors import TopologyError
from repro.shapes import make_shape


class TestKRegularRing:
    def test_k1_equals_plain_ring(self):
        kring = make_shape("kring", k=1)
        ring = make_shape("ring")
        for size in (2, 5, 12):
            for rank in range(size):
                assert kring.target_neighbors(rank, size) == ring.target_neighbors(
                    rank, size
                )

    def test_k2_neighborhood(self):
        kring = make_shape("kring", k=2)
        assert kring.target_neighbors(0, 10) == {1, 2, 8, 9}
        assert kring.degree(10) == 4

    def test_small_size_wraps_without_self(self):
        kring = make_shape("kring", k=3)
        neighbors = kring.target_neighbors(0, 4)
        assert 0 not in neighbors
        assert neighbors == {1, 2, 3}

    def test_invalid_k(self):
        with pytest.raises(TopologyError):
            make_shape("kring", k=0)

    def test_symmetric_everywhere(self):
        kring = make_shape("kring", k=3)
        size = 11
        for rank in range(size):
            for other in kring.target_neighbors(rank, size):
                assert rank in kring.target_neighbors(other, size)

    def test_converges_in_runtime(self):
        builder = TopologyBuilder("KRing")
        builder.component("backbone", "kring", size=24, k=2)
        deployment = Runtime(builder.nodes(24).build(), seed=61).deploy()
        report = deployment.run_until_converged(80)
        assert report.converged, report.rounds

    def test_survives_consecutive_failures(self):
        """The k-ring's selling point: 2k-1 consecutive crashes keep it
        connected, and the overlay re-tightens around the hole."""
        import networkx as nx

        from repro.analysis import realized_graph

        builder = TopologyBuilder("KRing")
        builder.component("backbone", "kring", size=30, k=2)
        deployment = Runtime(builder.nodes(30).build(), seed=62).deploy()
        assert deployment.run_until_converged(80).converged
        for victim in (3, 4, 5):  # 2k-1 consecutive ranks
            deployment.network.kill(victim)
        deployment.run(15)
        graph = realized_graph(deployment)
        assert nx.is_connected(graph)


class TestWheel:
    def test_hub_and_rim_targets(self):
        wheel = make_shape("wheel")
        assert wheel.target_neighbors(0, 6) == {1, 2, 3, 4, 5}
        assert wheel.target_neighbors(1, 6) == {0, 2, 5}  # hub + rim ring
        assert wheel.target_neighbors(3, 6) == {0, 2, 4}

    def test_tiny_wheels(self):
        wheel = make_shape("wheel")
        assert wheel.target_neighbors(0, 1) == frozenset()
        assert wheel.target_neighbors(0, 2) == {1}
        assert wheel.target_neighbors(1, 2) == {0}
        assert wheel.target_neighbors(1, 3) == {0, 2}

    def test_metric_prefers_hub_and_rim_neighbors(self):
        wheel = make_shape("wheel")
        metric = wheel.metric(8)
        hub = wheel.coordinate(0, 8)
        rim_1 = wheel.coordinate(1, 8)
        rim_2 = wheel.coordinate(2, 8)
        rim_4 = wheel.coordinate(4, 8)
        assert metric(rim_1, hub) == 1.0
        assert metric(rim_1, rim_2) == 1.0
        assert metric(rim_1, rim_4) > 1.0

    def test_view_size_covers_rim(self):
        assert make_shape("wheel").view_size(20, 8) >= 20

    def test_converges_in_runtime(self):
        builder = TopologyBuilder("Wheel")
        builder.component("broker", "wheel", size=16)
        deployment = Runtime(builder.nodes(16).build(), seed=63).deploy()
        report = deployment.run_until_converged(80)
        assert report.converged, report.rounds

    def test_routing_through_hub(self):
        from repro.app import Router

        builder = TopologyBuilder("Wheel")
        builder.component("broker", "wheel", size=16)
        deployment = Runtime(builder.nodes(16).build(), seed=64).deploy()
        assert deployment.run_until_converged(80).converged
        router = Router(deployment)
        members = deployment.role_map.member_ids("broker")
        # Opposite rim nodes: the hub (rank 0) is the 2-hop shortcut.
        route = router.route(members[1], members[8])
        assert route.hops <= 2
