"""Tests for the shape registry (the DSL's component-library hook)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.shapes import available_shapes, make_shape, register_shape
from repro.shapes.base import Shape
from repro.shapes.ring import Ring


class TestLookup:
    def test_all_builtins_registered(self):
        names = available_shapes()
        for expected in (
            "ring",
            "line",
            "star",
            "clique",
            "grid",
            "torus",
            "tree",
            "hypercube",
            "random",
        ):
            assert expected in names

    def test_make_shape_returns_instance(self):
        assert isinstance(make_shape("ring"), Ring)

    def test_unknown_shape_lists_known(self):
        with pytest.raises(ConfigurationError, match="ring"):
            make_shape("dodecahedron")

    def test_params_forwarded(self):
        assert make_shape("grid", rows=2).rows == 2

    def test_bad_params_reported(self):
        with pytest.raises(ConfigurationError, match="grid"):
            make_shape("grid", bogus=1)


class TestRegistration:
    def test_register_custom_shape(self):
        class Pair(Shape):
            name = "pair_test_shape"

            def metric(self, size):
                return lambda a, b: float(abs(a - b))

            def target_neighbors(self, rank, size):
                partner = rank ^ 1
                return frozenset({partner} if partner < size else set())

        register_shape("pair_test_shape", Pair)
        shape = make_shape("pair_test_shape")
        assert shape.target_neighbors(0, 4) == {1}
        assert "pair_test_shape" in available_shapes()

    def test_register_rejects_bad_names(self):
        with pytest.raises(ConfigurationError):
            register_shape("not a name", Ring)
        with pytest.raises(ConfigurationError):
            register_shape("", Ring)

    def test_reregistration_overrides(self):
        register_shape("override_test", Ring)
        register_shape("override_test", lambda: make_shape("line"))
        assert make_shape("override_test").name == "line"
