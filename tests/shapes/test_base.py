"""Tests for the shape interface's derived helpers and invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.shapes import available_shapes, make_shape

#: (name, sizes that are valid for the shape) used by parametrized suites.
SHAPE_SIZES = [
    ("ring", [1, 2, 3, 8, 17]),
    ("line", [1, 2, 3, 8, 17]),
    ("star", [1, 2, 3, 8, 17]),
    ("clique", [1, 2, 3, 8, 17]),
    ("grid", [1, 2, 4, 6, 12]),
    ("torus", [1, 2, 4, 6, 12]),
    ("tree", [1, 2, 3, 8, 17]),
    ("hypercube", [1, 2, 4, 8, 16]),
    ("random", [1, 2, 3, 8, 17]),
    ("kring", [1, 2, 3, 8, 17]),
    ("wheel", [1, 2, 3, 8, 17]),
]


@pytest.mark.parametrize("name,sizes", SHAPE_SIZES)
class TestStructuralInvariants:
    def test_target_neighbors_symmetric(self, name, sizes):
        """If a is a target neighbour of b, b is one of a (undirected shapes)."""
        shape = make_shape(name)
        for size in sizes:
            for rank in range(size):
                for other in shape.target_neighbors(rank, size):
                    assert rank in shape.target_neighbors(other, size), (
                        f"{name}: asymmetric edge ({rank}, {other}) at size {size}"
                    )

    def test_no_self_loops(self, name, sizes):
        shape = make_shape(name)
        for size in sizes:
            for rank in range(size):
                assert rank not in shape.target_neighbors(rank, size)

    def test_neighbors_in_range(self, name, sizes):
        shape = make_shape(name)
        for size in sizes:
            for rank in range(size):
                assert all(
                    0 <= other < size
                    for other in shape.target_neighbors(rank, size)
                )

    def test_degree_matches_max_neighborhood(self, name, sizes):
        shape = make_shape(name)
        for size in sizes:
            if size == 1:
                assert shape.degree(size) == 0 or name == "random"
                continue
            expected = max(
                len(shape.target_neighbors(rank, size)) for rank in range(size)
            )
            if name != "random":
                assert shape.degree(size) == expected

    def test_metric_nonnegative_and_symmetric(self, name, sizes):
        shape = make_shape(name)
        for size in sizes:
            metric = shape.metric(size)
            coords = [shape.coordinate(rank, size) for rank in range(size)]
            for a in coords[: min(6, size)]:
                for b in coords[: min(6, size)]:
                    assert metric(a, b) >= 0
                    assert metric(a, b) == metric(b, a)

    def test_metric_identity(self, name, sizes):
        shape = make_shape(name)
        for size in sizes:
            metric = shape.metric(size)
            for rank in range(min(size, 5)):
                coord = shape.coordinate(rank, size)
                assert metric(coord, coord) == 0.0

    def test_target_converges_on_its_own_adjacency(self, name, sizes):
        """The target adjacency must satisfy the shape's own predicate."""
        shape = make_shape(name)
        for size in sizes:
            adjacency = {
                rank: list(shape.target_neighbors(rank, size))
                for rank in range(size)
            }
            if name == "random":
                # Random graphs demand a minimum degree instead.
                continue
            assert shape.converged(adjacency, size)

    def test_empty_adjacency_not_converged(self, name, sizes):
        shape = make_shape(name)
        for size in sizes:
            if size < 2 or name == "random":
                continue
            assert not shape.converged({}, size)

    def test_view_size_covers_degree(self, name, sizes):
        shape = make_shape(name)
        for size in sizes:
            assert shape.view_size(size, 8) >= shape.degree(size)

    def test_rank_out_of_range_raises(self, name, sizes):
        shape = make_shape(name)
        size = sizes[-1]
        with pytest.raises(TopologyError):
            shape.target_neighbors(size, size)
        with pytest.raises(TopologyError):
            shape.coordinate(-1, size)


class TestTargetEdges:
    def test_edges_are_canonical_pairs(self):
        shape = make_shape("ring")
        edges = shape.target_edges(6)
        assert all(a < b for a, b in edges)
        assert (0, 1) in edges and (0, 5) in edges
        assert len(edges) == 6

    def test_missing_edges_reporting(self):
        shape = make_shape("ring")
        adjacency = {0: [1], 1: [0, 2], 2: [1], 3: []}
        missing = shape.missing_edges(adjacency, 4)
        assert (3, 0) in missing and (3, 2) in missing
        assert (1, 0) not in missing


class TestEqualityAndRepr:
    def test_parameterless_shapes_equal(self):
        assert make_shape("ring") == make_shape("ring")
        assert make_shape("ring") != make_shape("line")

    def test_parameterized_equality(self):
        assert make_shape("grid", rows=3) == make_shape("grid", rows=3)
        assert make_shape("grid", rows=3) != make_shape("grid", rows=2)

    def test_repr_mentions_params(self):
        assert "rows=3" in repr(make_shape("grid", rows=3))

    def test_hashable(self):
        shapes = {make_shape("ring"), make_shape("ring"), make_shape("line")}
        assert len(shapes) == 2


#: Shapes whose distance is a true metric. Excluded: grid/torus/hypercube
#: (composite coordinates, checked separately) and wheel (its hub shortcut
#: deliberately breaks the triangle inequality — it is an attractiveness
#: function for the greedy overlay, like the star's, not a metric).
_METRIC_SHAPES = [
    n
    for n in available_shapes()
    if n not in ("grid", "torus", "hypercube", "wheel")
]


@settings(max_examples=50, deadline=None)
@given(
    name=st.sampled_from(_METRIC_SHAPES),
    size=st.integers(1, 40),
    seed=st.integers(0, 1000),
)
def test_triangle_inequality_samples(name, size, seed):
    """Spot-check the triangle inequality on random coordinate triples."""
    import random

    shape = make_shape(name)
    metric = shape.metric(size)
    rng = random.Random(seed)
    ranks = [rng.randrange(size) for _ in range(3)]
    a, b, c = (shape.coordinate(rank, size) for rank in ranks)
    assert metric(a, c) <= metric(a, b) + metric(b, c) + 1e-9
