"""RunnerConfig: validation, immutability, and legacy adaptation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.runtime import RuntimeConfig
from repro.errors import ConfigurationError
from repro.runtime.api import RunnerConfig
from repro.scale.engine import ShardPlan
from repro.sim.config import GossipParams, SimulationConfig, TransportCosts


class TestValidation:
    def test_defaults_are_valid(self):
        config = RunnerConfig()
        assert config.kind == "round" and config.n_nodes == 64

    def test_frozen(self):
        config = RunnerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.n_nodes = 5  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "steam"},
            {"n_nodes": 0},
            {"loss_rate": 1.0},
            {"loss_rate": -0.2},
            {"max_rounds": -1},
            {"n_shards": 0},
            {"n_shards": 65},
            {"mode": "threads"},
            {"backend": "arrow"},
            {"node_index": -1},
            {"node_index": 64},
            {"port": -1},
            {"port": 70_000},
            {"round_interval": 0.0},
            {"ttl": 0},
            {"ttl": 17},
            {"fanout": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            RunnerConfig(**kwargs)

    def test_net_knobs_accepted(self):
        config = RunnerConfig(
            kind="net",
            n_nodes=8,
            node_index=3,
            rendezvous="127.0.0.1:9000",
            round_interval=0.1,
        )
        assert config.node_index == 3


class TestFromLegacy:
    def test_gossip_params(self):
        params = GossipParams(view_size=9)
        config = RunnerConfig.from_legacy(params)
        assert config.gossip is params and config.kind == "round"

    def test_simulation_config(self):
        legacy = SimulationConfig(master_seed=42, max_rounds=50)
        config = RunnerConfig.from_legacy(legacy)
        assert config.seed == 42 and config.max_rounds == 50

    def test_runtime_config(self):
        legacy = RuntimeConfig(loss_rate=0.1)
        config = RunnerConfig.from_legacy(legacy)
        assert config.loss_rate == pytest.approx(0.1)
        assert config.gossip is legacy.peer_sampling

    def test_shard_plan(self):
        config = RunnerConfig.from_legacy(ShardPlan(n_nodes=128, n_shards=4))
        assert config.kind == "sharded"
        assert (config.n_nodes, config.n_shards) == (128, 4)

    def test_overrides_win(self):
        config = RunnerConfig.from_legacy(
            SimulationConfig(master_seed=42), seed=7, kind="loopback"
        )
        assert config.seed == 7 and config.kind == "loopback"

    def test_unknown_type_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="no legacy adapter"):
            RunnerConfig.from_legacy(TransportCosts())

    def test_overrides_still_validated(self):
        with pytest.raises(ConfigurationError):
            RunnerConfig.from_legacy(GossipParams(), n_nodes=0)
