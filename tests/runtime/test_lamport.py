"""Lamport clock semantics: monotonicity, causal merge, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.runtime.lamport import LamportClock


class TestLamportClock:
    def test_starts_at_zero(self):
        assert LamportClock().read() == 0

    def test_custom_start(self):
        assert LamportClock(5).read() == 5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(-1)

    def test_tick_advances_by_one(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.read() == 2

    def test_read_does_not_advance(self):
        clock = LamportClock()
        clock.read()
        clock.read()
        assert clock.read() == 0

    def test_observe_jumps_past_remote(self):
        clock = LamportClock()
        assert clock.observe(10) == 11
        assert clock.read() == 11

    def test_observe_stale_remote_still_advances(self):
        clock = LamportClock(20)
        assert clock.observe(3) == 21

    def test_causal_ordering_across_two_clocks(self):
        """If send happens-before receive, L(send) < L(receive)."""
        sender, receiver = LamportClock(), LamportClock(7)
        stamp = sender.tick()
        assert receiver.observe(stamp) > stamp

    def test_concurrent_ticks_never_lose_an_event(self):
        clock = LamportClock()
        per_thread, threads = 500, 8

        def hammer():
            for _ in range(per_thread):
                clock.tick()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert clock.read() == per_thread * threads

    def test_concurrent_observe_and_tick_stay_monotone(self):
        clock = LamportClock()
        seen = []

        def ticker():
            for _ in range(300):
                seen.append(clock.tick())

        def observer():
            for remote in range(300):
                seen.append(clock.observe(remote))

        a, b = threading.Thread(target=ticker), threading.Thread(target=observer)
        a.start(), b.start()
        a.join(), b.join()
        assert clock.read() >= 600  # no update lost
        assert clock.read() >= max(seen)
