"""Wire-codec hardening: round-trip exactness and hostile-input behavior."""

from __future__ import annotations

import json

import pytest

from repro.errors import WireError
from repro.gossip.descriptors import Descriptor, Provenance
from repro.runtime import wire

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False


def roundtrip(payload):
    frame = wire.make_frame(wire.GOSSIP_REQ, src=3, msg_id="3:1", payload=payload)
    return wire.decode(wire.encode(frame))["payload"]


class TestValueRoundTrip:
    def test_scalars(self):
        for value in (None, True, False, 0, -7, 3.5, "text", ""):
            assert roundtrip(value) == value

    def test_tuple_survives_as_tuple(self):
        value = (1, 2, (3, "x"))
        out = roundtrip(value)
        assert out == value
        assert isinstance(out, tuple)
        assert isinstance(out[2], tuple)

    def test_list_stays_list(self):
        out = roundtrip([1, (2, 3)])
        assert isinstance(out, list)
        assert isinstance(out[1], tuple)

    def test_descriptor_bit_for_bit(self):
        descriptor = Descriptor(
            9, age=4, profile=(1.0, 2.0), provenance=Provenance(9, 3, 2)
        )
        out = roundtrip(descriptor)
        assert isinstance(out, Descriptor)
        assert out.node_id == 9 and out.age == 4
        assert out.profile == (1.0, 2.0) and isinstance(out.profile, tuple)
        assert out.provenance == Provenance(9, 3, 2)

    def test_descriptor_without_provenance(self):
        out = roundtrip(Descriptor(1, age=0, profile=None))
        assert isinstance(out, Descriptor)
        assert out.provenance is None

    def test_non_string_key_map(self):
        value = {(0, 1): "a", 7: "b"}
        out = roundtrip(value)
        assert out == value
        assert set(map(type, out)) == {tuple, int}

    def test_string_key_map_plain(self):
        assert roundtrip({"a": [1], "b": (2,)}) == {"a": [1], "b": (2,)}

    def test_descriptor_list_payload(self):
        payload = [Descriptor(i, age=i, profile=(float(i),)) for i in range(5)]
        out = roundtrip(payload)
        assert [d.node_id for d in out] == list(range(5))

    def test_unencodable_value_raises_on_send(self):
        with pytest.raises(WireError):
            roundtrip(object())

    def test_unencodable_set_raises_on_send(self):
        with pytest.raises(WireError):
            roundtrip({1, 2})


if HAVE_HYPOTHESIS:
    payloads = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**31), max_value=2**31)
        | st.floats(allow_nan=False, allow_infinity=False)
        | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.tuples(children, children)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
        | st.builds(
            Descriptor,
            st.integers(min_value=0, max_value=10_000),
            age=st.integers(min_value=0, max_value=64),
            profile=st.tuples(st.floats(allow_nan=False, allow_infinity=False)),
            provenance=st.none()
            | st.builds(
                Provenance,
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=32),
            ),
        ),
        max_leaves=12,
    )

    @given(payloads)
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_roundtrip(payload):
        assert roundtrip(payload) == payload

    @given(st.binary(max_size=256))
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_hostile_bytes_never_crash(data):
        try:
            wire.decode(data)
        except WireError:
            pass  # the only allowed failure mode


class TestHostileDecode:
    def ok_frame(self, **overrides):
        frame = {"v": wire.WIRE_VERSION, "t": wire.PING, "id": "1:1", "ttl": 0, "src": 1}
        frame.update(overrides)
        return json.dumps(frame).encode("utf-8")

    def test_truncated(self):
        with pytest.raises(WireError):
            wire.decode(self.ok_frame()[:-4])

    def test_not_utf8(self):
        with pytest.raises(WireError):
            wire.decode(b"\xff\xfe\x00")

    def test_not_json(self):
        with pytest.raises(WireError):
            wire.decode(b"not json at all")

    def test_not_an_object(self):
        with pytest.raises(WireError):
            wire.decode(b"[1, 2, 3]")

    def test_version_skew(self):
        with pytest.raises(WireError, match="version skew"):
            wire.decode(self.ok_frame(v=wire.WIRE_VERSION + 1))

    def test_missing_version(self):
        frame = json.loads(self.ok_frame())
        del frame["v"]
        with pytest.raises(WireError, match="version skew"):
            wire.decode(json.dumps(frame).encode("utf-8"))

    def test_unknown_type(self):
        with pytest.raises(WireError, match="unknown frame type"):
            wire.decode(self.ok_frame(t="EVIL"))

    def test_bad_msg_id(self):
        for bad in ("", 7, None, "x" * 200):
            with pytest.raises(WireError, match="message id"):
                wire.decode(self.ok_frame(id=bad))

    def test_ttl_out_of_range(self):
        for bad in (-1, wire.MAX_TTL + 1, "4", True, None):
            with pytest.raises(WireError, match="ttl"):
                wire.decode(self.ok_frame(ttl=bad))

    def test_bad_src(self):
        for bad in (-1, "3", None, True):
            with pytest.raises(WireError, match="source"):
                wire.decode(self.ok_frame(src=bad))

    def test_oversized_datagram(self):
        with pytest.raises(WireError, match="exceeds"):
            wire.decode(b" " * (wire.MAX_FRAME_BYTES + 1))

    def test_oversized_frame_rejected_on_encode(self):
        frame = wire.make_frame(
            wire.GOSSIP_REQ, src=1, msg_id="1:1", payload="x" * wire.MAX_FRAME_BYTES
        )
        with pytest.raises(WireError, match="exceeds"):
            wire.encode(frame)

    def test_malformed_tag_payloads(self):
        for tag_value in ({"__d": [1]}, {"__p": "x"}, {"__t": 3}, {"__m": [[1]]}):
            hostile = self.ok_frame(payload=tag_value)
            with pytest.raises(WireError):
                wire.decode(hostile)

    def test_non_bytes_input(self):
        with pytest.raises(WireError):
            wire.decode("a string")  # type: ignore[arg-type]


class TestTraceField:
    """Version-tolerant trace context: optional, validated, interoperable."""

    def encode_with_trace(self, trace):
        frame = wire.make_frame(wire.GOSSIP_REQ, src=2, msg_id="2:1", payload=[1])
        frame[wire.TRACE_KEY] = trace
        return wire.encode(frame)

    def test_round_trip_with_trace(self):
        tags = [Provenance(4, 7, 1), Provenance(9, 2, 0)]
        data = self.encode_with_trace(wire.make_trace(31, tags))
        out = wire.decode(data)
        assert out[wire.TRACE_KEY] == {"lc": 31, "tags": tags}
        assert all(isinstance(tag, Provenance) for tag in out[wire.TRACE_KEY]["tags"])

    def test_round_trip_without_trace(self):
        frame = wire.make_frame(wire.GOSSIP_REQ, src=2, msg_id="2:1", payload=[1])
        out = wire.decode(wire.encode(frame))
        assert wire.TRACE_KEY not in out

    def test_traced_frame_decodes_on_trace_unaware_peer(self):
        """A decoder that ignores the field still gets an intact frame.

        The forward-compat contract: WIRE_VERSION stays 1, so a build
        without the trace feature sees ``tr`` as just another extra key —
        stripping it must leave a frame the same decoder accepts.
        """
        data = self.encode_with_trace(wire.make_trace(5))
        frame = json.loads(data.decode("utf-8"))
        del frame[wire.TRACE_KEY]
        stripped = wire.decode(json.dumps(frame).encode("utf-8"))
        assert stripped["payload"] == [1]
        assert wire.TRACE_KEY not in stripped

    def test_make_trace_normalizes(self):
        trace = wire.make_trace(7)
        assert trace == {"lc": 7, "tags": []}

    def test_hostile_trace_shapes_raise(self):
        for bad in ([1, 2], "trace", 7, True):
            with pytest.raises(WireError, match="trace"):
                wire.decode(self.encode_with_trace(bad))

    def test_hostile_clock_raises(self):
        for bad_clock in (None, "5", -1, True, 3.5):
            with pytest.raises(WireError, match="trace clock"):
                wire.decode(self.encode_with_trace({"lc": bad_clock, "tags": []}))

    def test_missing_clock_raises(self):
        with pytest.raises(WireError, match="trace clock"):
            wire.decode(self.encode_with_trace({"tags": []}))

    def test_hostile_tags_raise(self):
        for bad_tags in ("tags", 7, {"a": 1}):
            with pytest.raises(WireError, match="trace tags"):
                wire.decode(self.encode_with_trace({"lc": 0, "tags": bad_tags}))

    def test_non_provenance_tag_items_raise(self):
        with pytest.raises(WireError, match="provenance"):
            wire.decode(self.encode_with_trace({"lc": 0, "tags": [1, 2]}))

    def test_tag_flood_rejected(self):
        tags = [[0, 0, 0]] * (wire.MAX_TRACE_TAGS + 1)
        # Hand-rolled JSON: encode() would pay the pack cost for a frame
        # we only need on the hostile decode side.
        frame = {
            "v": wire.WIRE_VERSION,
            "t": wire.PING,
            "id": "1:1",
            "ttl": 0,
            "src": 1,
            wire.TRACE_KEY: {
                "lc": 0,
                "tags": [{"__p": tag} for tag in tags],
            },
        }
        with pytest.raises(WireError, match="tags"):
            wire.decode(json.dumps(frame).encode("utf-8"))

    def test_truncated_traced_frame_raises(self):
        data = self.encode_with_trace(wire.make_trace(3, [Provenance(1, 1, 0)]))
        for cut in (1, len(data) // 2, len(data) - 2):
            with pytest.raises(WireError):
                wire.decode(data[:cut])

    def test_unknown_extra_trace_keys_tolerated(self):
        out = wire.decode(
            self.encode_with_trace({"lc": 9, "tags": [], "future": "field"})
        )
        assert out[wire.TRACE_KEY] == {"lc": 9, "tags": []}


if HAVE_HYPOTHESIS:

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.lists(
            st.builds(
                Provenance,
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=32),
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_hypothesis_trace_roundtrip(clock, tags):
        frame = wire.make_frame(wire.GOSSIP_RESP, src=1, msg_id="1:1")
        frame[wire.TRACE_KEY] = wire.make_trace(clock, tags)
        out = wire.decode(wire.encode(frame))
        assert out[wire.TRACE_KEY] == {"lc": clock, "tags": tags}

    trace_shapes = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-10, max_value=2**33)
        | st.floats(allow_nan=False, allow_infinity=False)
        | st.text(max_size=10),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=6), children, max_size=4),
        max_leaves=8,
    )

    @given(trace_shapes)
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_hostile_trace_never_crashes(trace):
        frame = {
            "v": wire.WIRE_VERSION,
            "t": wire.PING,
            "id": "1:1",
            "ttl": 0,
            "src": 1,
            wire.TRACE_KEY: trace,
        }
        try:
            out = wire.decode(json.dumps(frame).encode("utf-8"))
        except WireError:
            return  # the only allowed failure mode
        checked = out[wire.TRACE_KEY]
        assert isinstance(checked["lc"], int) and checked["lc"] >= 0


class TestSeenSet:
    def test_dedup(self):
        seen = wire.SeenSet(capacity=8)
        assert seen.add("a:1") is True
        assert seen.add("a:1") is False

    def test_bounded_under_flood(self):
        seen = wire.SeenSet(capacity=64)
        for i in range(10_000):
            seen.add(f"flood:{i}")
        assert len(seen) == 64

    def test_fifo_eviction_bias(self):
        seen = wire.SeenSet(capacity=2)
        seen.add("old")
        seen.add("mid")
        seen.add("new")
        assert "old" not in seen
        assert "mid" in seen and "new" in seen
        # an evicted id is treated as fresh again
        assert seen.add("old") is True

    def test_capacity_validated(self):
        with pytest.raises(WireError):
            wire.SeenSet(capacity=0)


class TestMsgIdsAndRelay:
    def test_msg_id_stream_deterministic(self):
        a, b = wire.MsgIdSource(5), wire.MsgIdSource(5)
        assert [a.next() for _ in range(3)] == [b.next() for _ in range(3)]
        assert a.next() == "5:4"

    def test_relay_decrements_ttl(self):
        frame = wire.make_frame(wire.ANNOUNCE, src=1, msg_id="1:1", ttl=3)
        relayed = wire.relay_frame(frame)
        assert relayed["ttl"] == 2
        assert frame["ttl"] == 3  # original untouched

    def test_relay_stops_at_zero(self):
        frame = wire.make_frame(wire.ANNOUNCE, src=1, msg_id="1:1", ttl=0)
        assert wire.relay_frame(frame) is None

    def test_flood_exhausts_in_max_ttl_hops(self):
        frame = wire.make_frame(wire.ANNOUNCE, src=1, msg_id="1:1", ttl=wire.MAX_TTL)
        hops = 0
        while frame is not None:
            frame = wire.relay_frame(frame)
            hops += 1
        assert hops == wire.MAX_TTL + 1
