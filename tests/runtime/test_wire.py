"""Wire-codec hardening: round-trip exactness and hostile-input behavior."""

from __future__ import annotations

import json

import pytest

from repro.errors import WireError
from repro.gossip.descriptors import Descriptor, Provenance
from repro.runtime import wire

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False


def roundtrip(payload):
    frame = wire.make_frame(wire.GOSSIP_REQ, src=3, msg_id="3:1", payload=payload)
    return wire.decode(wire.encode(frame))["payload"]


class TestValueRoundTrip:
    def test_scalars(self):
        for value in (None, True, False, 0, -7, 3.5, "text", ""):
            assert roundtrip(value) == value

    def test_tuple_survives_as_tuple(self):
        value = (1, 2, (3, "x"))
        out = roundtrip(value)
        assert out == value
        assert isinstance(out, tuple)
        assert isinstance(out[2], tuple)

    def test_list_stays_list(self):
        out = roundtrip([1, (2, 3)])
        assert isinstance(out, list)
        assert isinstance(out[1], tuple)

    def test_descriptor_bit_for_bit(self):
        descriptor = Descriptor(
            9, age=4, profile=(1.0, 2.0), provenance=Provenance(9, 3, 2)
        )
        out = roundtrip(descriptor)
        assert isinstance(out, Descriptor)
        assert out.node_id == 9 and out.age == 4
        assert out.profile == (1.0, 2.0) and isinstance(out.profile, tuple)
        assert out.provenance == Provenance(9, 3, 2)

    def test_descriptor_without_provenance(self):
        out = roundtrip(Descriptor(1, age=0, profile=None))
        assert isinstance(out, Descriptor)
        assert out.provenance is None

    def test_non_string_key_map(self):
        value = {(0, 1): "a", 7: "b"}
        out = roundtrip(value)
        assert out == value
        assert set(map(type, out)) == {tuple, int}

    def test_string_key_map_plain(self):
        assert roundtrip({"a": [1], "b": (2,)}) == {"a": [1], "b": (2,)}

    def test_descriptor_list_payload(self):
        payload = [Descriptor(i, age=i, profile=(float(i),)) for i in range(5)]
        out = roundtrip(payload)
        assert [d.node_id for d in out] == list(range(5))

    def test_unencodable_value_raises_on_send(self):
        with pytest.raises(WireError):
            roundtrip(object())

    def test_unencodable_set_raises_on_send(self):
        with pytest.raises(WireError):
            roundtrip({1, 2})


if HAVE_HYPOTHESIS:
    payloads = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**31), max_value=2**31)
        | st.floats(allow_nan=False, allow_infinity=False)
        | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.tuples(children, children)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
        | st.builds(
            Descriptor,
            st.integers(min_value=0, max_value=10_000),
            age=st.integers(min_value=0, max_value=64),
            profile=st.tuples(st.floats(allow_nan=False, allow_infinity=False)),
            provenance=st.none()
            | st.builds(
                Provenance,
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=32),
            ),
        ),
        max_leaves=12,
    )

    @given(payloads)
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_roundtrip(payload):
        assert roundtrip(payload) == payload

    @given(st.binary(max_size=256))
    @settings(max_examples=150, deadline=None)
    def test_hypothesis_hostile_bytes_never_crash(data):
        try:
            wire.decode(data)
        except WireError:
            pass  # the only allowed failure mode


class TestHostileDecode:
    def ok_frame(self, **overrides):
        frame = {"v": wire.WIRE_VERSION, "t": wire.PING, "id": "1:1", "ttl": 0, "src": 1}
        frame.update(overrides)
        return json.dumps(frame).encode("utf-8")

    def test_truncated(self):
        with pytest.raises(WireError):
            wire.decode(self.ok_frame()[:-4])

    def test_not_utf8(self):
        with pytest.raises(WireError):
            wire.decode(b"\xff\xfe\x00")

    def test_not_json(self):
        with pytest.raises(WireError):
            wire.decode(b"not json at all")

    def test_not_an_object(self):
        with pytest.raises(WireError):
            wire.decode(b"[1, 2, 3]")

    def test_version_skew(self):
        with pytest.raises(WireError, match="version skew"):
            wire.decode(self.ok_frame(v=wire.WIRE_VERSION + 1))

    def test_missing_version(self):
        frame = json.loads(self.ok_frame())
        del frame["v"]
        with pytest.raises(WireError, match="version skew"):
            wire.decode(json.dumps(frame).encode("utf-8"))

    def test_unknown_type(self):
        with pytest.raises(WireError, match="unknown frame type"):
            wire.decode(self.ok_frame(t="EVIL"))

    def test_bad_msg_id(self):
        for bad in ("", 7, None, "x" * 200):
            with pytest.raises(WireError, match="message id"):
                wire.decode(self.ok_frame(id=bad))

    def test_ttl_out_of_range(self):
        for bad in (-1, wire.MAX_TTL + 1, "4", True, None):
            with pytest.raises(WireError, match="ttl"):
                wire.decode(self.ok_frame(ttl=bad))

    def test_bad_src(self):
        for bad in (-1, "3", None, True):
            with pytest.raises(WireError, match="source"):
                wire.decode(self.ok_frame(src=bad))

    def test_oversized_datagram(self):
        with pytest.raises(WireError, match="exceeds"):
            wire.decode(b" " * (wire.MAX_FRAME_BYTES + 1))

    def test_oversized_frame_rejected_on_encode(self):
        frame = wire.make_frame(
            wire.GOSSIP_REQ, src=1, msg_id="1:1", payload="x" * wire.MAX_FRAME_BYTES
        )
        with pytest.raises(WireError, match="exceeds"):
            wire.encode(frame)

    def test_malformed_tag_payloads(self):
        for tag_value in ({"__d": [1]}, {"__p": "x"}, {"__t": 3}, {"__m": [[1]]}):
            hostile = self.ok_frame(payload=tag_value)
            with pytest.raises(WireError):
                wire.decode(hostile)

    def test_non_bytes_input(self):
        with pytest.raises(WireError):
            wire.decode("a string")  # type: ignore[arg-type]


class TestSeenSet:
    def test_dedup(self):
        seen = wire.SeenSet(capacity=8)
        assert seen.add("a:1") is True
        assert seen.add("a:1") is False

    def test_bounded_under_flood(self):
        seen = wire.SeenSet(capacity=64)
        for i in range(10_000):
            seen.add(f"flood:{i}")
        assert len(seen) == 64

    def test_fifo_eviction_bias(self):
        seen = wire.SeenSet(capacity=2)
        seen.add("old")
        seen.add("mid")
        seen.add("new")
        assert "old" not in seen
        assert "mid" in seen and "new" in seen
        # an evicted id is treated as fresh again
        assert seen.add("old") is True

    def test_capacity_validated(self):
        with pytest.raises(WireError):
            wire.SeenSet(capacity=0)


class TestMsgIdsAndRelay:
    def test_msg_id_stream_deterministic(self):
        a, b = wire.MsgIdSource(5), wire.MsgIdSource(5)
        assert [a.next() for _ in range(3)] == [b.next() for _ in range(3)]
        assert a.next() == "5:4"

    def test_relay_decrements_ttl(self):
        frame = wire.make_frame(wire.ANNOUNCE, src=1, msg_id="1:1", ttl=3)
        relayed = wire.relay_frame(frame)
        assert relayed["ttl"] == 2
        assert frame["ttl"] == 3  # original untouched

    def test_relay_stops_at_zero(self):
        frame = wire.make_frame(wire.ANNOUNCE, src=1, msg_id="1:1", ttl=0)
        assert wire.relay_frame(frame) is None

    def test_flood_exhausts_in_max_ttl_hops(self):
        frame = wire.make_frame(wire.ANNOUNCE, src=1, msg_id="1:1", ttl=wire.MAX_TTL)
        hops = 0
        while frame is not None:
            frame = wire.relay_frame(frame)
            hops += 1
        assert hops == wire.MAX_TTL + 1
