"""Traced vs untraced live swarms: identical overlays, real telemetry.

The acceptance gate for distributed tracing: attaching a collector with a
flow tracer to every node of a live UDP swarm must not perturb the overlay
the protocol converges to, while the traced run actually records RTT
histograms, trace frames, and Lamport progress.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.collector import Collector
from repro.obs.flow import FlowTracer
from repro.runtime.api import RunnerConfig, make_runner

N_NODES = 3
ROUNDS = 60
INTERVAL = 0.05


def run_live_swarm(collectors=None):
    """Run a three-node in-process UDP swarm; returns (runners_view, ok)."""
    base = dict(
        kind="net", n_nodes=N_NODES, shape="ring", seed=11, round_interval=INTERVAL
    )

    def obs_for(index):
        return None if collectors is None else collectors[index]

    runners = [make_runner(RunnerConfig(node_index=0, **base), obs=obs_for(0))]
    try:
        runners[0].start()
        rendezvous = f"127.0.0.1:{runners[0].port}"
        for index in range(1, N_NODES):
            runners.append(
                make_runner(
                    RunnerConfig(node_index=index, rendezvous=rendezvous, **base),
                    obs=obs_for(index),
                )
            )
        threads = [
            threading.Thread(target=runner.run, args=(ROUNDS,), daemon=True)
            for runner in runners
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=ROUNDS * INTERVAL + 15)
        assert not any(thread.is_alive() for thread in threads)
        adjacency = {runner.node_id: set(runner.neighbors()) for runner in runners}
        converged = runners[0].shape.converged(adjacency, N_NODES)
        wire_stats = [runner.wire_stats() for runner in runners]
        lamports = [runner.endpoint.lamport.read() for runner in runners]
        return adjacency, converged, wire_stats, lamports
    finally:
        for runner in runners:
            runner.close()


@pytest.mark.slow
def test_traced_swarm_matches_untraced_overlay():
    bare_adjacency, bare_converged, bare_stats, _ = run_live_swarm()
    collectors = [
        Collector(gauge_every=0, flow=FlowTracer()) for _ in range(N_NODES)
    ]
    traced_adjacency, traced_converged, traced_stats, lamports = run_live_swarm(
        collectors
    )

    # Ring-3 has a unique converged overlay, so the two independent runs
    # are directly comparable: tracing must not change what the protocol
    # converges to.
    assert bare_converged and traced_converged
    assert traced_adjacency == bare_adjacency

    for stats in bare_stats + traced_stats:
        assert stats["malformed"] == 0

    # ...and the traced run really observed the swarm.
    assert any(
        collector.counter_total("trace_frames") > 0 for collector in collectors
    )
    assert any(
        histogram.count > 0
        for collector in collectors
        for (name, _layer), histogram in collector.histograms.items()
        if name == "gossip_rtt"
    )
    assert any(value > 0 for value in lamports)
    assert any(
        collector.flow.deliveries > 0 for collector in collectors
    )
