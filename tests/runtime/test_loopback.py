"""The digest gate: the loopback runner is byte-identical to the round engine.

Every exchange on the loopback runner round-trips its request and reply
through the wire codec; if the codec loses anything (a tuple collapsed to a
list, a descriptor field dropped) the overlays diverge and the digests
differ. Equality here is what licenses trusting the same codec under the
UDP runtime, where divergence would look like mysterious overlay noise.
"""

from __future__ import annotations

import pytest

from repro.perf.digest import overlay_digest
from repro.runtime.api import OVERLAY_LAYER, PS_LAYER, RunnerConfig, make_runner
from repro.runtime.loopback import LoopbackTransport
from repro.sim.transport import Transport


def digest_for(kind: str, shape: str, n_nodes: int, seed: int, rounds: int):
    runner = make_runner(
        RunnerConfig(kind=kind, shape=shape, n_nodes=n_nodes, seed=seed)
    )
    runner.run(rounds)
    return (
        overlay_digest(runner.network, [PS_LAYER, OVERLAY_LAYER]),
        runner.transport,
    )


def test_digest_gate_small_ring():
    plain, _ = digest_for("round", "ring", 16, seed=3, rounds=20)
    wired, transport = digest_for("loopback", "ring", 16, seed=3, rounds=20)
    assert wired == plain
    assert transport.wire_frames > 0
    assert transport.wire_bytes > transport.wire_frames  # frames are non-empty


@pytest.mark.slow
@pytest.mark.parametrize("shape", ["ring", "grid"])
def test_digest_gate_64(shape):
    plain, _ = digest_for("round", shape, 64, seed=1, rounds=40)
    wired, transport = digest_for("loopback", shape, 64, seed=1, rounds=40)
    assert wired == plain
    assert transport.wire_frames > 0


def test_modelled_accounting_identical():
    """The ledger (modelled costs) must not notice the codec round-trip."""
    _, plain = digest_for("round", "ring", 16, seed=5, rounds=12)
    _, wired = digest_for("loopback", "ring", 16, seed=5, rounds=12)
    assert wired.total_bytes() == plain.total_bytes()
    assert wired.total_messages() == plain.total_messages()


def test_wire_counters_track_serialized_traffic():
    transport = LoopbackTransport(Transport())
    assert transport.wire_frames == 0 and transport.wire_bytes == 0
    assert transport.unwrap() is transport.inner
