"""Fault decorators: stacking semantics and legacy-path equivalence.

The headline regression: driving a deployment's faults through
:class:`~repro.faults.transports.FaultTransport` (with ``engine.faults``
*off*) must produce byte-identical overlay digests and drop/delay
accounting to the historical ``engine.faults`` plane — both paths draw
from the same ``("linkfaults", layer, node)`` streams in the same order.
"""

from __future__ import annotations

import random

import pytest

from repro.core.layers import RUNTIME_LAYERS
from repro.errors import ConfigurationError
from repro.faults.plane import FaultPlane, LinkQuality
from repro.faults.scenarios import standard_deployment
from repro.faults.transports import FaultTransport, LatencyTransport, LossTransport
from repro.perf.digest import overlay_digest
from repro.sim.transport import Transport, TransportDecorator


class TestDecoratorUnits:
    def test_loss_rate_validated(self):
        with pytest.raises(ConfigurationError):
            LossTransport(Transport(), rate=1.0, rng=random.Random(1))
        with pytest.raises(ConfigurationError):
            LossTransport(Transport(), rate=-0.1, rng=random.Random(1))

    def test_loss_drops_and_accounts(self):
        inner = Transport()
        transport = LossTransport(inner, rate=0.5, rng=random.Random(42))
        outcomes = [transport.deliverable(None, dst=1, layer="x") for _ in range(200)]
        dropped = outcomes.count(False)
        assert 50 < dropped < 150  # memoryless coin at 0.5
        assert inner.drop_reasons() == {"loss": dropped}

    def test_zero_loss_draws_nothing(self):
        class Exploding(random.Random):
            def random(self):  # pragma: no cover - must not be called
                raise AssertionError("rate=0 must not draw")

        transport = LossTransport(Transport(), rate=0.0, rng=Exploding(1))
        assert transport.deliverable(None, dst=1) is True

    def test_latency_validated(self):
        with pytest.raises(ConfigurationError):
            LatencyTransport(Transport(), latency=-1.0)
        with pytest.raises(ConfigurationError):
            LatencyTransport(Transport(), latency=0.1, timeout_latency=0.0)

    def test_latency_below_timeout_delays(self):
        inner = Transport()
        transport = LatencyTransport(inner, latency=0.4)
        assert transport.deliverable(None, dst=1, layer="x") is True
        assert inner.total_delayed("x") == 1
        assert inner.mean_extra_latency("x") == pytest.approx(0.4)

    def test_latency_at_timeout_drops(self):
        inner = Transport()
        transport = LatencyTransport(inner, latency=1.0)
        assert transport.deliverable(None, dst=1, layer="x") is False
        assert inner.drop_reasons() == {"timeout": 1}

    def test_decorators_stack_and_unwrap(self):
        inner = Transport()
        stacked = LossTransport(
            LatencyTransport(inner, latency=0.2), rate=0.0, rng=random.Random(1)
        )
        assert stacked.unwrap() is inner
        assert isinstance(stacked.inner, TransportDecorator)
        # accounting queries resolve through __getattr__ to the real ledger
        stacked.record_message("x", 3)
        assert inner.total_messages("x") == 1

    def test_accounting_lands_on_shared_ledger(self):
        inner = Transport()
        outer = LatencyTransport(inner, latency=1.5)
        outer.deliverable(None, dst=2, layer="uo1")
        assert outer.total_dropped("uo1") == 1  # read through the decorator


def run_fault_schedule(seed: int, use_decorator: bool):
    """The mixed partition→links schedule, via either fault path."""
    deployment = standard_deployment(32, seed)
    deployment.run_until_converged(120)
    if use_decorator:
        plane = FaultPlane()
        engine = deployment.engine
        engine.transport = FaultTransport(
            engine.transport, plane, engine.streams
        )
    else:
        plane = deployment.install_faults()
    ids = sorted(deployment.network.alive_ids())
    half = len(ids) // 2
    plane.set_partition(
        {nid: (0 if i < half else 1) for i, nid in enumerate(ids)}
    )
    deployment.run(8)
    plane.clear_partition()
    plane.links.set_node(ids[0], LinkQuality(loss=0.5, latency=0.0))
    plane.links.set_pair(ids[1], ids[2], LinkQuality(loss=0.0, latency=1.5))
    plane.links.set_pair(ids[3], ids[4], LinkQuality(loss=0.0, latency=0.4))
    deployment.run(8)
    plane.links.clear()
    deployment.run(8)
    return {
        "digest": overlay_digest(deployment.network, RUNTIME_LAYERS),
        "drop_reasons": dict(deployment.transport.drop_reasons()),
        "total_dropped": deployment.transport.total_dropped(),
        "total_delayed": deployment.transport.total_delayed(),
    }


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 7])
def test_decorator_equivalent_to_engine_plane(seed):
    legacy = run_fault_schedule(seed, use_decorator=False)
    decorated = run_fault_schedule(seed, use_decorator=True)
    assert decorated == legacy
    # the schedule actually exercised every fault mode
    assert set(legacy["drop_reasons"]) == {"loss", "partition", "timeout"}
    assert legacy["total_delayed"] > 0
