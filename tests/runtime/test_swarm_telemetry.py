"""Supervisor-side telemetry merge: flow states, histograms, event streams."""

from __future__ import annotations

from repro.gossip.descriptors import Descriptor, Provenance
from repro.obs.collector import Collector, Histogram
from repro.obs.flow import FlowTracer
from repro.runtime.swarm import SwarmReport, merge_node_events, merge_telemetry
from repro.runtime.telemetry import TelemetryStream


def node_status(node, *, with_flow=True, with_rtt=True, with_hops=True):
    """A synthetic status record shaped like _swarm_node's publish()."""
    record = {"node": node, "round": 3, "neighbors": [node + 1], "wire": {}}
    if with_flow:
        tracer = FlowTracer()
        descriptor = Descriptor(
            9, age=0, profile=None, provenance=Provenance(9, 0, 0)
        )
        tracer.on_received("overlay", 2, node, (node + 1) % 4, [descriptor])
        record["flow"] = tracer.to_state()
    if with_rtt:
        histogram = Histogram()
        histogram.record(0.002 * (node + 1))
        record["rtt"] = {"overlay": histogram.to_dict()}
    if with_hops:
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.record(node + 1)
        record["hops"] = histogram.to_dict()
    return record


class TestMergeTelemetry:
    def test_flow_states_merge_into_one_tracer(self):
        collector = Collector(gauge_every=0)
        statuses = {node: node_status(node) for node in range(3)}
        merge_telemetry(collector, statuses)
        assert collector.flow is not None
        assert collector.flow.deliveries == 3
        assert len(collector.flow.flow_graph("overlay")) == 3

    def test_rtt_histograms_merge_per_layer(self):
        collector = Collector(gauge_every=0)
        merge_telemetry(collector, {node: node_status(node) for node in range(3)})
        merged = collector.histogram_of("gossip_rtt", layer="overlay")
        assert merged is not None and merged.count == 3
        assert merged.vmax == 0.006

    def test_hops_merge_under_empty_layer(self):
        collector = Collector(gauge_every=0)
        merge_telemetry(collector, {node: node_status(node) for node in range(2)})
        hops = collector.histogram_of("announce_hops")
        assert hops is not None and hops.count == 2

    def test_rebuild_from_scratch_never_double_counts(self):
        collector = Collector(gauge_every=0)
        statuses = {0: node_status(0)}
        merge_telemetry(collector, statuses)
        merge_telemetry(collector, statuses)  # supervisor polls repeatedly
        assert collector.flow.deliveries == 1
        assert collector.histogram_of("gossip_rtt", layer="overlay").count == 1

    def test_malformed_node_dump_degrades_gracefully(self):
        collector = Collector(gauge_every=0)
        bad = {"node": 1, "flow": {"latencies": "garbage"}, "rtt": {"overlay": 7}}
        merge_telemetry(collector, {0: node_status(0), 1: bad})
        # the good node's histogram survives, the bad one is skipped
        assert collector.histogram_of("gossip_rtt", layer="overlay").count == 1

    def test_statuses_without_telemetry_are_fine(self):
        collector = Collector(gauge_every=0)
        merge_telemetry(
            collector,
            {0: {"node": 0, "round": 1, "neighbors": []}},
        )
        assert collector.histogram_of("gossip_rtt", layer="overlay") is None


class TestSwarmReportTelemetry:
    def make_report(self, **overrides):
        defaults = dict(
            n_nodes=2,
            shape="ring",
            seed=1,
            round_interval=0.2,
            converged=True,
            rounds=5,
            verdict="healthy",
            nodes={
                0: {"round": 5, "neighbors": [1], "wire": {"bytes_sent": 10},
                    "metrics_port": 40001, "lamport": 17},
            },
        )
        defaults.update(overrides)
        return SwarmReport(**defaults)

    def test_to_dict_carries_flow_and_rtt(self):
        report = self.make_report(
            flow={"overlay": {"deliveries": 4}},
            rtt={"overlay": {"count": 9, "mean_seconds": 0.001,
                             "p95_seconds": 0.002, "max_seconds": 0.003}},
        )
        data = report.to_dict()
        assert data["flow"]["overlay"]["deliveries"] == 4
        assert data["rtt"]["overlay"]["count"] == 9
        assert data["nodes"]["0"]["metrics_port"] == 40001
        assert data["nodes"]["0"]["lamport"] == 17

    def test_to_dict_defaults(self):
        data = self.make_report().to_dict()
        assert data["flow"] is None
        assert data["rtt"] == {}


class TestMergeNodeEvents:
    def write_stream(self, path, node, rounds):
        collector = Collector(gauge_every=0)
        stream = TelemetryStream(str(path))
        collector.emit("node_up", node=node)
        stream.flush(collector)
        for round_index in rounds:
            collector._round = round_index  # what bind_round_source would do
            collector.emit("node_round", node=node, round=round_index)
            stream.flush(collector)

    def test_merged_stream_is_round_ordered(self, tmp_path):
        collector = Collector(gauge_every=0)
        for node, rounds in ((0, (1, 3)), (1, (2,))):
            path = tmp_path / f"node-{node}.jsonl"
            stream = TelemetryStream(str(path))
            collector_n = Collector(gauge_every=0)
            source = iter([0] + list(rounds))
            collector_n.bind_round_source(lambda it=source: next(it))
            collector_n.emit("node_up", node=node)
            for round_index in rounds:
                collector_n.emit("node_round", node=node, round=round_index)
            stream.flush(collector_n)
        events = merge_node_events(str(tmp_path))
        assert [event.kind for event in events[:2]] == ["node_up", "node_up"]
        assert [event.round for event in events] == sorted(
            event.round for event in events
        )
        assert len(events) == 5

    def test_empty_directory_yields_no_events(self, tmp_path):
        assert merge_node_events(str(tmp_path)) == []
