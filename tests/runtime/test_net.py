"""UDP runtime: membership bookkeeping units plus a live in-process swarm."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.runtime.api import RunnerConfig, make_runner
from repro.runtime.net import LIVENESS_WINDOW, NetDirectory, parse_rendezvous
from repro.sim.node import Node


class TestParseRendezvous:
    def test_valid(self):
        assert parse_rendezvous("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_ipv6_style_uses_last_colon(self):
        assert parse_rendezvous("::1:9000") == ("::1", 9000)

    @pytest.mark.parametrize(
        "text", ["", "nohost", ":9000", "host:", "host:abc", "host:0", "host:70000"]
    )
    def test_malformed(self, text):
        with pytest.raises(ConfigurationError):
            parse_rendezvous(text)


def make_directory():
    facades = []

    def make_facade(node_id: int) -> Node:
        node = Node(node_id)
        facades.append(node)
        return node

    return NetDirectory(Node(0), make_facade), facades


class TestNetDirectory:
    def test_add_peer_news_and_update(self):
        directory, _ = make_directory()
        assert directory.add_peer(1, "127.0.0.1", 9001) is True
        assert directory.add_peer(1, "127.0.0.1", 9002) is False  # update, not news
        assert directory.addr_of(1) == ("127.0.0.1", 9002)
        assert directory.add_peer(0, "127.0.0.1", 9000) is False  # self is not a peer
        assert directory.roster() == [(1, "127.0.0.1", 9002)]

    def test_network_surface(self):
        directory, facades = make_directory()
        directory.add_peer(2, "127.0.0.1", 9002)
        directory.add_peer(1, "127.0.0.1", 9001)
        assert directory.node_ids() == [0, 1, 2]
        assert directory.has_node(0) and directory.has_node(2)
        assert not directory.has_node(9)
        assert directory.size() == len(directory) == 3
        assert directory.node(0) is directory.local
        facade = directory.node(2)
        assert facade.node_id == 2
        assert directory.node(2) is facade  # cached, one facade per peer
        assert facades == [facade]

    def test_unknown_peer_is_an_error(self):
        directory, _ = make_directory()
        with pytest.raises(SimulationError, match="unknown swarm peer"):
            directory.node(5)

    def test_liveness_window(self):
        directory, _ = make_directory()
        directory.add_peer(1, "127.0.0.1", 9001)
        assert directory.is_alive(1)
        directory.round += LIVENESS_WINDOW
        assert directory.is_alive(1)  # exactly at the window edge
        directory.round += 1
        assert not directory.is_alive(1)
        assert directory.alive_ids() == [0]  # self is always alive
        directory.touch(1)
        assert directory.is_alive(1)
        assert directory.alive_ids() == [0, 1]

    def test_touch_unknown_peer_is_noop(self):
        directory, _ = make_directory()
        directory.touch(42)
        assert directory.addr_of(42) is None


@pytest.mark.slow
def test_three_node_swarm_in_process():
    """Three live UDP nodes on threads: full roster, ring-3 convergence."""
    n, rounds = 3, 60
    base = dict(kind="net", n_nodes=n, shape="ring", seed=11, round_interval=0.05)
    runners = [make_runner(RunnerConfig(node_index=0, **base))]
    try:
        runners[0].start()
        rendezvous = f"127.0.0.1:{runners[0].port}"
        for i in range(1, n):
            runners.append(
                make_runner(RunnerConfig(node_index=i, rendezvous=rendezvous, **base))
            )
        threads = [
            threading.Thread(target=r.run, args=(rounds,), daemon=True)
            for r in runners
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=rounds * 0.05 + 15)
        assert not any(thread.is_alive() for thread in threads)
        for runner in runners:
            assert sorted(runner.directory.node_ids()) == list(range(n))
            assert runner.round > 0
            stats = runner.wire_stats()
            assert stats["malformed"] == 0
        adjacency = {r.node_id: set(r.neighbors()) for r in runners}
        assert runners[0].shape.converged(adjacency, n)
    finally:
        for runner in runners:
            runner.close()
            runner.close()  # idempotent
