"""make_runner: one factory, four kinds, deprecation on the legacy doors."""

from __future__ import annotations

import warnings

import pytest

from repro.runtime.api import Runner, RunnerConfig, make_runner
from repro.runtime.engines import RoundRunner, ShardRunner
from repro.runtime.loopback import LoopbackTransport
from repro.runtime.net import NetRunner
from repro.scale.engine import ShardedEngine
from repro.sim.engine import Engine


def make_quiet(config: RunnerConfig, **kwargs):
    """Build a runner asserting the factory path emits no DeprecationWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        return make_runner(config, **kwargs)


class TestFactory:
    def test_round_kind(self):
        runner = make_quiet(RunnerConfig(kind="round", n_nodes=8))
        assert isinstance(runner, RoundRunner)
        assert isinstance(runner, Runner)
        assert runner.deployment is not None
        assert len(runner.deployment.rank_of) == 8

    def test_round_runs_and_counts(self):
        runner = make_quiet(RunnerConfig(kind="round", n_nodes=8, shape="ring"))
        executed = runner.run(5)
        assert executed == 5 and runner.round == 5
        runner.close()  # idempotent no-op
        runner.close()

    def test_round_with_explicit_network_skips_deployment(self):
        donor = make_quiet(RunnerConfig(kind="round", n_nodes=4)).deployment
        runner = make_quiet(
            RunnerConfig(kind="round", n_nodes=4),
            network=donor.network,
            transport=donor.transport,
            streams=donor.streams,
        )
        assert runner.deployment is None
        assert runner.network is donor.network

    def test_loopback_kind_wraps_transport(self):
        runner = make_quiet(RunnerConfig(kind="loopback", n_nodes=8))
        assert isinstance(runner, RoundRunner)
        assert isinstance(runner.transport, LoopbackTransport)

    def test_loopback_wraps_a_supplied_plain_transport(self):
        from repro.sim.transport import Transport

        inner = Transport()
        donor = make_quiet(RunnerConfig(kind="round", n_nodes=4)).deployment
        runner = make_quiet(
            RunnerConfig(kind="loopback", n_nodes=4),
            network=donor.network,
            transport=inner,
            streams=donor.streams,
        )
        assert isinstance(runner.transport, LoopbackTransport)
        assert runner.transport.unwrap() is inner

    def test_sharded_kind(self):
        runner = make_quiet(
            RunnerConfig(kind="sharded", n_nodes=32, n_shards=4, shape="ring")
        )
        assert isinstance(runner, ShardRunner)
        assert isinstance(runner, Runner)
        executed = runner.run(30)
        assert 0 < executed <= 30
        assert runner.converged()
        runner.close()

    def test_net_kind_builds_without_starting(self):
        runner = make_quiet(
            RunnerConfig(kind="net", n_nodes=3, node_index=0, round_interval=0.05)
        )
        assert isinstance(runner, NetRunner)
        assert isinstance(runner, Runner)
        runner.close()  # never started: close must still be safe
        runner.close()


class TestDeprecatedDoors:
    def test_direct_engine_warns(self):
        deployment = make_quiet(RunnerConfig(kind="round", n_nodes=4)).deployment
        with pytest.warns(DeprecationWarning, match="make_runner"):
            Engine(deployment.network, deployment.transport, deployment.streams)

    def test_direct_sharded_engine_warns(self):
        with pytest.warns(DeprecationWarning, match="make_runner"):
            ShardedEngine("elementary", "ring", 16, 1)

    def test_subclasses_stay_quiet(self):
        deployment = make_quiet(RunnerConfig(kind="round", n_nodes=4)).deployment
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            RoundRunner(deployment.network, deployment.transport, deployment.streams)
            ShardRunner("elementary", "ring", 16, 1)
