"""Per-node telemetry plumbing: the /metrics endpoint and the JSONL stream."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs.collector import Collector
from repro.obs.export import read_jsonl
from repro.runtime.telemetry import MetricsServer, TelemetryStream


def make_collector() -> Collector:
    collector = Collector(gauge_every=0)
    collector.count("exchanges", 3, layer="overlay")
    collector.gauge("peers_known", 7.0)
    collector.histogram("gossip_rtt", 0.004, layer="overlay")
    return collector


class TestMetricsServer:
    def test_serves_prometheus_snapshot(self):
        with MetricsServer(make_collector()) as server:
            assert server.port != 0
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
        assert "repro_exchanges_total" in body
        assert "repro_gossip_rtt_bucket" in body
        assert 'layer="overlay"' in body

    def test_query_string_is_ignored(self):
        with MetricsServer(make_collector()) as server:
            url = f"http://127.0.0.1:{server.port}/metrics?format=prom"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200

    def test_other_paths_are_404(self):
        with MetricsServer(make_collector()) as server:
            url = f"http://127.0.0.1:{server.port}/other"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404

    def test_scrape_reflects_live_collector_state(self):
        collector = make_collector()
        with MetricsServer(collector) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            before = urllib.request.urlopen(url, timeout=5).read().decode()
            collector.count("exchanges", 5, layer="overlay")
            after = urllib.request.urlopen(url, timeout=5).read().decode()
        assert before != after
        assert "8" in after  # 3 + 5 increments visible mid-run

    def test_port_zero_until_started(self):
        server = MetricsServer(make_collector())
        assert server.port == 0
        try:
            port = server.start()
            assert port == server.port != 0
            assert server.start() == port  # idempotent
        finally:
            server.close()

    def test_close_is_idempotent(self):
        server = MetricsServer(make_collector())
        server.start()
        server.close()
        server.close()
        assert server.port == 0


class TestTelemetryStream:
    def test_incremental_flush_appends_only_fresh_events(self, tmp_path):
        collector = Collector(gauge_every=0)
        path = tmp_path / "node-0.jsonl"
        stream = TelemetryStream(str(path))
        collector.emit("node_up", node=0)
        assert stream.flush(collector) == 1
        collector.emit("node_round", node=0, round=1)
        collector.emit("node_round", node=0, round=2)
        assert stream.flush(collector) == 2
        assert stream.flush(collector) == 0  # nothing new
        assert stream.written == 3
        events = read_jsonl(str(path))
        assert [event.kind for event in events] == [
            "node_up",
            "node_round",
            "node_round",
        ]

    def test_no_file_until_first_event(self, tmp_path):
        path = tmp_path / "node-1.jsonl"
        stream = TelemetryStream(str(path))
        assert stream.flush(Collector(gauge_every=0)) == 0
        assert not path.exists()

    def test_accepts_a_plain_event_list(self, tmp_path):
        collector = Collector(gauge_every=0)
        collector.emit("node_up", node=2)
        path = tmp_path / "node-2.jsonl"
        stream = TelemetryStream(str(path))
        assert stream.flush(list(collector.events)) == 1
        assert read_jsonl(str(path))[0].kind == "node_up"
