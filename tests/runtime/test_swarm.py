"""Swarm harness: supervisor building blocks plus one live 4-node swarm."""

from __future__ import annotations

import json

import pytest

from repro.obs.collector import Collector
from repro.perf.bench import BenchReport, write_bench
from repro.runtime import swarm
from repro.shapes import make_shape


class TestPorts:
    def test_free_udp_ports_distinct(self):
        ports = swarm._free_udp_ports(8)
        assert len(ports) == len(set(ports)) == 8
        assert all(1 <= port <= 65535 for port in ports)


class TestStatusFiles:
    def test_atomic_write_and_read(self, tmp_path):
        swarm._write_status(
            swarm._status_path(tmp_path, 0), {"node": 0, "round": 3}
        )
        swarm._write_status(
            swarm._status_path(tmp_path, 1), {"node": 1, "round": 2}
        )
        statuses = swarm.read_statuses(tmp_path)
        assert set(statuses) == {0, 1}
        assert statuses[0]["round"] == 3

    def test_torn_and_alien_files_skipped(self, tmp_path):
        (tmp_path / "node-0.json").write_text('{"node": 0, "rou', encoding="utf-8")
        (tmp_path / "node-1.json").write_text('{"no_node_key": 1}', encoding="utf-8")
        (tmp_path / "node-2.json").write_text(
            json.dumps({"node": 2, "round": 1}), encoding="utf-8"
        )
        (tmp_path / "unrelated.txt").write_text("x", encoding="utf-8")
        assert set(swarm.read_statuses(tmp_path)) == {2}

    def test_swarm_adjacency(self):
        statuses = {
            0: {"node": 0, "neighbors": [1, 3]},
            1: {"node": 1, "neighbors": []},
        }
        assert swarm.swarm_adjacency(statuses) == {0: [1, 3], 1: []}


def ring_statuses(n):
    """Fabricated statuses of a perfectly-converged ring-n overlay."""
    return {
        i: {"node": i, "round": 5, "neighbors": sorted({(i - 1) % n, (i + 1) % n})}
        for i in range(n)
    }


class TestFeedCollector:
    def test_converged_ring(self):
        collector = Collector(gauge_every=1)
        shape = make_shape("ring")
        assert swarm.feed_collector(collector, ring_statuses(6), shape, 6) is True
        assert collector.gauge_value("layers_converged") == pytest.approx(
            swarm.SWARM_LAYERS
        )
        assert collector.gauge_value("out_degree_mean", layer="overlay") == 2.0
        assert collector.gauge_value("swarm_nodes_reporting") == 6.0

    def test_partial_overlay_scales_gauge(self):
        collector = Collector(gauge_every=1)
        shape = make_shape("ring")
        statuses = ring_statuses(6)
        statuses[0]["neighbors"] = []  # node 0 lost both its edges
        assert swarm.feed_collector(collector, statuses, shape, 6) is False
        gauge = collector.gauge_value("layers_converged")
        assert 0.0 < gauge < swarm.SWARM_LAYERS

    def test_missing_node_blocks_convergence(self):
        collector = Collector(gauge_every=1)
        shape = make_shape("ring")
        statuses = ring_statuses(6)
        del statuses[3]
        assert swarm.feed_collector(collector, statuses, shape, 6) is False
        assert collector.gauge_value("swarm_nodes_reporting") == 5.0

    def test_empty_statuses(self):
        collector = Collector(gauge_every=1)
        assert (
            swarm.feed_collector(collector, {}, make_shape("ring"), 4) is False
        )
        assert collector.gauge_value("layers_converged") == 0.0


def make_report(**overrides):
    fields = dict(
        n_nodes=2,
        shape="ring",
        seed=1,
        round_interval=0.1,
        converged=True,
        rounds=7,
        verdict="healthy",
        nodes={
            0: {
                "node": 0,
                "round": 7,
                "neighbors": [1],
                "wire": {"datagrams_sent": 10, "bytes_sent": 900},
            },
            1: {
                "node": 1,
                "round": 7,
                "neighbors": [0],
                "wire": {"datagrams_sent": 12, "bytes_sent": 1100},
            },
        },
    )
    fields.update(overrides)
    return swarm.SwarmReport(**fields)


class TestBenchMerge:
    def test_report_bandwidth_sums_nodes(self):
        bandwidth = make_report().bandwidth()
        assert bandwidth["datagrams_sent"] == 22
        assert bandwidth["bytes_sent"] == 2000
        assert bandwidth["malformed"] == 0

    def test_write_swarm_bench_preserves_foreign_sections(self, tmp_path):
        path = tmp_path / "BENCH_gossip.json"
        path.write_text(
            json.dumps({"workloads": ["keep"], "scale_tiers": {"keep": 1}}),
            encoding="utf-8",
        )
        swarm.write_swarm_bench(make_report(), str(path))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["workloads"] == ["keep"]
        assert data["scale_tiers"] == {"keep": 1}
        assert data["swarm"]["converged"] is True
        assert data["swarm"]["bandwidth"]["datagrams_sent"] == 22

    def test_perf_write_bench_preserves_swarm_back(self, tmp_path):
        path = tmp_path / "BENCH_gossip.json"
        swarm.write_swarm_bench(make_report(), str(path))
        report = BenchReport(scale="smoke", master_seed=1, parallel=None)
        write_bench(report, json_path=str(path), results_dir=None)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["swarm"]["rounds"] == 7  # survived the perf rewrite
        assert data["suite"] == "gossip"

    def test_corrupt_bench_file_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH_gossip.json"
        path.write_text("not json", encoding="utf-8")
        swarm.write_swarm_bench(make_report(), str(path))
        assert json.loads(path.read_text(encoding="utf-8"))["swarm"]["seed"] == 1


class TestGuards:
    def test_swarm_needs_two_nodes(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match=">= 2 nodes"):
            swarm.run_swarm(n_nodes=1)

    def test_module_main_rejects_supervisor_role(self):
        with pytest.raises(SystemExit, match="child entry point"):
            swarm.main([])


@pytest.mark.slow
def test_run_swarm_four_nodes(tmp_path):
    """A real 4-process UDP swarm converges and reports healthy."""
    report, collector = swarm.run_swarm(
        n_nodes=4,
        shape="ring",
        seed=3,
        round_interval=0.1,
        max_rounds=80,
        status_dir=str(tmp_path),
    )
    assert report.converged
    assert report.verdict == "healthy"
    assert report.alerts == []
    assert set(report.nodes) == {0, 1, 2, 3}
    assert report.bandwidth()["datagrams_sent"] > 0
    assert report.bandwidth()["malformed"] == 0
    assert collector.gauge_value("swarm_nodes_reporting") == 4.0
    assert (tmp_path / "swarm.json").exists()
    assert (tmp_path / swarm.STOP_FLAG).exists()
