"""Tests for node descriptors."""

from __future__ import annotations

import pytest

from repro.gossip.descriptors import Descriptor, youngest


class TestImmutability:
    def test_cannot_set_attributes(self):
        descriptor = Descriptor(1, 2, "p")
        with pytest.raises(AttributeError):
            descriptor.age = 5  # type: ignore[misc]

    def test_aged_returns_new_object(self):
        descriptor = Descriptor(1, 2)
        older = descriptor.aged()
        assert older is not descriptor
        assert older.age == 3
        assert descriptor.age == 2

    def test_aged_increment(self):
        assert Descriptor(0, 0).aged(5).age == 5

    def test_fresh_resets_age(self):
        assert Descriptor(1, 9, "p").fresh().age == 0

    def test_fresh_keeps_profile(self):
        assert Descriptor(1, 9, "p").fresh().profile == "p"

    def test_with_profile(self):
        updated = Descriptor(1, 3, "old").with_profile("new")
        assert updated.profile == "new"
        assert updated.age == 3
        assert updated.node_id == 1


class TestEquality:
    def test_equal_same_id_and_age(self):
        assert Descriptor(1, 2, "x") == Descriptor(1, 2, "y")

    def test_unequal_different_age(self):
        assert Descriptor(1, 2) != Descriptor(1, 3)

    def test_hashable(self):
        assert len({Descriptor(1, 2), Descriptor(1, 2), Descriptor(2, 2)}) == 2

    def test_not_equal_to_other_types(self):
        assert Descriptor(1, 2) != (1, 2)


class TestYoungest:
    def test_picks_lower_age(self):
        young = Descriptor(1, 1)
        old = Descriptor(1, 7)
        assert youngest(young, old) is young
        assert youngest(old, young) is young

    def test_handles_none(self):
        descriptor = Descriptor(1, 0)
        assert youngest(None, descriptor) is descriptor
        assert youngest(descriptor, None) is descriptor
        assert youngest(None, None) is None

    def test_tie_prefers_first(self):
        a = Descriptor(1, 3, "a")
        b = Descriptor(1, 3, "b")
        assert youngest(a, b) is a
