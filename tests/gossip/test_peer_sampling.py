"""Tests for the gossip-based peer-sampling service."""

from __future__ import annotations

from tests.gossip.helpers import GossipWorld


class TestBootstrap:
    def test_bootstrap_fills_view(self):
        world = GossipWorld(20)
        sizes = [len(world.ps(i).view) for i in range(20)]
        assert all(size == world.params.view_size for size in sizes)

    def test_bootstrap_excludes_self(self):
        world = GossipWorld(10)
        for index in range(10):
            assert world.nodes[index].node_id not in world.ps(index).view.ids()

    def test_bootstrap_with_tiny_population(self):
        world = GossipWorld(2)
        assert world.ps(0).view.ids() == [1]

    def test_bootstrap_alone_is_noop(self):
        world = GossipWorld(1)
        assert len(world.ps(0).view) == 0


class TestMixing:
    def test_views_stay_full_and_change_over_time(self):
        world = GossipWorld(40, seed=3)
        world.run(1)
        before = {i: set(world.ps(i).view.ids()) for i in range(40)}
        world.run(6)
        after = {i: set(world.ps(i).view.ids()) for i in range(40)}
        # Views remain (nearly) full...
        assert all(
            len(world.ps(i).view) >= world.params.view_size - 1 for i in range(40)
        )
        # ...and the swapper/healer machinery actually mixes their contents.
        changed = sum(1 for i in range(40) if before[i] != after[i])
        assert changed > 30

    def test_knowledge_graph_becomes_connected(self):
        """From any node, every other node is reachable through views."""
        world = GossipWorld(30, seed=5)
        world.run(10)
        adjacency = {
            node.node_id: set(world.ps(i).view.ids())
            for i, node in enumerate(world.nodes)
        }
        seen = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == set(range(30))

    def test_self_never_in_own_view(self):
        world = GossipWorld(20, seed=7)
        world.run(8)
        for index in range(20):
            assert world.nodes[index].node_id not in world.ps(index).view.ids()

    def test_bandwidth_accounted(self):
        world = GossipWorld(10, seed=2)
        world.run(3)
        assert world.transport.total_bytes("peer_sampling") > 0
        assert world.transport.total_messages("peer_sampling") >= 10 * 3


class TestFailureHealing:
    def test_dead_nodes_purged_from_views(self):
        world = GossipWorld(30, seed=9)
        world.run(5)
        victims = [0, 1, 2, 3, 4]
        for victim in victims:
            world.network.kill(victim)
        world.run(15)
        victim_ids = {world.nodes[v].node_id for v in victims}
        for index in range(5, 30):
            leaked = victim_ids & set(world.ps(index).view.ids())
            assert not leaked, f"node {index} still references dead peers {leaked}"

    def test_rejoin_after_total_isolation(self):
        """A node whose view is wiped re-bootstraps through the oracle."""
        world = GossipWorld(12, seed=4)
        world.run(3)
        world.ps(0).view.clear()
        world.run(2)
        assert len(world.ps(0).view) > 0

    def test_forget_removes_entry(self):
        world = GossipWorld(6, seed=1)
        world.run(2)
        target = world.ps(0).view.ids()[0]
        world.ps(0).forget(target)
        assert target not in world.ps(0).view.ids()


class TestRandomSelection:
    def test_random_peer_selection_also_converges(self):
        """The framework's 'rand' peer-selection policy (select_tail=False)
        must keep the overlay mixing and connected too."""
        from repro.gossip.peer_sampling import PeerSampling
        from repro.sim.engine import Engine
        from repro.sim.network import Network
        from repro.sim.rng import RandomStreams
        from repro.sim.transport import Transport

        network = Network()
        streams = RandomStreams(13)
        nodes = network.create_nodes(24)
        for node in nodes:
            protocol = PeerSampling(node.node_id, select_tail=False)
            protocol.bootstrap(streams.stream("boot", node.node_id), network)
            node.attach("peer_sampling", protocol)
        Engine(network, Transport(), streams).run(10)
        for node in nodes:
            view = node.protocol("peer_sampling").view
            assert len(view) >= view.capacity - 2
            assert node.node_id not in view.ids()


class TestDeterminism:
    def test_same_seed_same_views(self):
        first = GossipWorld(15, seed=11)
        first.run(6)
        second = GossipWorld(15, seed=11)
        second.run(6)
        for index in range(15):
            assert sorted(first.ps(index).view.ids()) == sorted(
                second.ps(index).view.ids()
            )

    def test_different_seed_different_views(self):
        first = GossipWorld(15, seed=1)
        first.run(6)
        second = GossipWorld(15, seed=2)
        second.run(6)
        differing = sum(
            1
            for index in range(15)
            if sorted(first.ps(index).view.ids())
            != sorted(second.ps(index).view.ids())
        )
        assert differing > 5
