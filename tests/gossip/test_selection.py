"""Tests for proximity functions and descriptor-selection helpers."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.gossip.descriptors import Descriptor
from repro.gossip.selection import (
    FilteredProximity,
    Proximity,
    dedupe_youngest,
    rank_by_distance,
    select_closest,
)


def absolute(a, b):
    return abs(a - b)


class TestProximity:
    def test_delegates_distance(self):
        assert Proximity(absolute).distance(3, 7) == 4

    def test_default_eligibility_is_true(self):
        assert Proximity(absolute).eligible(1, 2)

    def test_filtered_proximity(self):
        proximity = FilteredProximity(absolute, lambda a, b: (a + b) % 2 == 0)
        assert proximity.eligible(1, 3)
        assert not proximity.eligible(1, 2)
        assert proximity.distance(1, 3) == 2


class TestDedupeYoungest:
    def test_keeps_youngest_copy(self):
        result = dedupe_youngest(
            [Descriptor(1, 5), Descriptor(1, 2), Descriptor(2, 0)]
        )
        ages = {d.node_id: d.age for d in result}
        assert ages == {1: 2, 2: 0}

    def test_empty(self):
        assert dedupe_youngest([]) == []


class TestRankByDistance:
    def test_sorted_ascending(self):
        pool = [Descriptor(i, 0, profile=i) for i in (9, 2, 6)]
        ranked = rank_by_distance(pool, 5, Proximity(absolute))
        assert [d.node_id for d in ranked] == [6, 2, 9]

    def test_tie_breaks_by_node_id(self):
        pool = [Descriptor(8, 0, profile=6), Descriptor(3, 0, profile=4)]
        ranked = rank_by_distance(pool, 5, Proximity(absolute))
        assert [d.node_id for d in ranked] == [3, 8]


class TestSelectClosest:
    def test_selects_k_closest(self):
        pool = [Descriptor(i, 0, profile=i) for i in range(10)]
        best = select_closest(pool, 5, Proximity(absolute), 3)
        assert {d.node_id for d in best} == {4, 5, 6}

    def test_excludes_id(self):
        pool = [Descriptor(i, 0, profile=i) for i in range(5)]
        best = select_closest(pool, 2, Proximity(absolute), 5, exclude_id=2)
        assert 2 not in {d.node_id for d in best}

    def test_applies_eligibility(self):
        proximity = FilteredProximity(absolute, lambda a, b: b % 2 == 0)
        pool = [Descriptor(i, 0, profile=i) for i in range(6)]
        best = select_closest(pool, 0, proximity, 10)
        assert {d.profile for d in best} == {0, 2, 4}

    def test_dedupes_before_ranking(self):
        pool = [Descriptor(1, 7, profile=1), Descriptor(1, 0, profile=1)]
        best = select_closest(pool, 0, Proximity(absolute), 5)
        assert len(best) == 1
        assert best[0].age == 0

    @settings(max_examples=60, deadline=None)
    @given(
        profiles=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
        reference=st.integers(-50, 50),
        k=st.integers(1, 10),
    )
    def test_result_is_optimal_prefix(self, profiles, reference, k):
        """No unselected candidate may be strictly closer than a selected one."""
        pool = [Descriptor(i, 0, profile=p) for i, p in enumerate(profiles)]
        best = select_closest(pool, reference, Proximity(absolute), k)
        assert len(best) == min(k, len(pool))
        if len(best) < len(pool):
            worst_selected = max(abs(d.profile - reference) for d in best)
            chosen = {d.node_id for d in best}
            for descriptor in pool:
                if descriptor.node_id not in chosen:
                    assert abs(descriptor.profile - reference) >= worst_selected
