"""Tests for the Cyclon shuffle protocol."""

from __future__ import annotations

from repro.gossip.cyclon import Cyclon
from repro.sim.config import GossipParams
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport


def cyclon_world(n, seed=1, params=None):
    params = params or GossipParams(view_size=6, gossip_size=3, healer=0, swapper=0)
    network = Network()
    streams = RandomStreams(seed)
    transport = Transport()
    nodes = network.create_nodes(n)
    rng = streams.stream("wire")
    for node in nodes:
        node.attach("cyclon", Cyclon(node.node_id, params))
    # Cyclon has no oracle bootstrap path by design; wire a random k-out
    # graph the way PeerSim initializers do.
    from repro.gossip.descriptors import Descriptor

    for node in nodes:
        candidates = [other.node_id for other in nodes if other is not node]
        for target in rng.sample(candidates, min(params.view_size, len(candidates))):
            node.protocol("cyclon").view.insert(Descriptor(target, 0))
    engine = Engine(network, transport, streams)
    return network, engine, nodes


class TestShuffle:
    def test_views_stay_bounded_and_self_free(self):
        network, engine, nodes = cyclon_world(20, seed=2)
        engine.run(10)
        for node in nodes:
            view = node.protocol("cyclon").view
            assert len(view) <= 6
            assert node.node_id not in view.ids()

    def test_views_mix(self):
        network, engine, nodes = cyclon_world(30, seed=3)
        before = {n.node_id: set(n.protocol("cyclon").view.ids()) for n in nodes}
        engine.run(8)
        after = {n.node_id: set(n.protocol("cyclon").view.ids()) for n in nodes}
        changed = sum(1 for nid in before if before[nid] != after[nid])
        assert changed >= 25

    def test_in_degree_stays_balanced(self):
        """Cyclon's selling point: in-degree distribution close to uniform."""
        network, engine, nodes = cyclon_world(40, seed=4)
        engine.run(20)
        in_degree = {n.node_id: 0 for n in nodes}
        for node in nodes:
            for neighbor in node.protocol("cyclon").view.ids():
                in_degree[neighbor] += 1
        values = sorted(in_degree.values())
        assert values[0] >= 1  # nobody forgotten
        assert values[-1] <= 15  # nobody hoards incoming links

    def test_dead_partner_removed(self):
        network, engine, nodes = cyclon_world(12, seed=5)
        engine.run(3)
        network.kill(0)
        engine.run(8)
        for node in nodes[1:]:
            assert 0 not in node.protocol("cyclon").view.ids()

    def test_bandwidth_recorded(self):
        network, engine, nodes = cyclon_world(10, seed=6)
        engine.run(3)
        assert engine.transport.total_bytes("cyclon") > 0

    def test_forget(self):
        network, engine, nodes = cyclon_world(8, seed=7)
        protocol = nodes[0].protocol("cyclon")
        victim = protocol.view.ids()[0]
        protocol.forget(victim)
        assert victim not in protocol.view.ids()
