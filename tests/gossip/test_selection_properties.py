"""Property tests pinning the heapq rewrite of descriptor selection.

``select_closest`` used to rank with ``sorted(...)[:k]``; it now uses
``heapq.nsmallest`` over the same ``(distance, node_id)`` key. These tests
assert exact equivalence — same descriptors, same order, including ties —
against a reference implementation kept in its original ``sorted`` form,
and that routing distances through the memoized :class:`DistanceCache`
changes nothing either.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.gossip.descriptors import Descriptor  # noqa: E402
from repro.gossip.selection import (  # noqa: E402
    FilteredProximity,
    Proximity,
    dedupe_youngest,
    rank_by_distance,
    select_closest,
)
from repro.perf.cache import DistanceCache  # noqa: E402

node_ids = st.integers(min_value=0, max_value=20)
ages = st.integers(min_value=0, max_value=6)
profiles = st.integers(min_value=0, max_value=10)
descriptors = st.builds(Descriptor, node_id=node_ids, age=ages, profile=profiles)

#: Coarse distances on purpose: // 3 buckets many profiles onto the same
#: distance, so tie-handling between sorted and nsmallest is exercised hard.
TIE_HEAVY = Proximity(lambda a, b: abs(a - b) // 3)
EXACT = Proximity(lambda a, b: abs(a - b))
FILTERED = FilteredProximity(
    lambda a, b: abs(a - b), lambda a, b: (a + b) % 2 == 0
)
PROXIMITIES = (TIE_HEAVY, EXACT, FILTERED)


def reference_select(descriptors, reference, proximity, k, exclude_id=-1):
    """The pre-optimization implementation, verbatim: full sort + slice."""
    pool = [
        descriptor
        for descriptor in dedupe_youngest(descriptors)
        if descriptor.node_id != exclude_id
        and proximity.eligible(reference, descriptor.profile)
    ]
    ranked = sorted(
        pool,
        key=lambda d: (proximity.distance(reference, d.profile), d.node_id),
    )
    return ranked[:k]


@given(
    pool=st.lists(descriptors, max_size=30),
    reference=profiles,
    k=st.integers(min_value=0, max_value=12),
    exclude=st.integers(min_value=-1, max_value=20),
    which=st.integers(min_value=0, max_value=len(PROXIMITIES) - 1),
)
@settings(max_examples=300, deadline=None)
def test_select_closest_matches_sorted_reference(pool, reference, k, exclude, which):
    proximity = PROXIMITIES[which]
    expected = reference_select(pool, reference, proximity, k, exclude_id=exclude)
    actual = select_closest(pool, reference, proximity, k, exclude_id=exclude)
    assert actual == expected
    # Order identity, not just set identity: ties must break the same way.
    assert [d.node_id for d in actual] == [d.node_id for d in expected]


@given(
    pool=st.lists(descriptors, max_size=30),
    reference=profiles,
    k=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=200, deadline=None)
def test_select_closest_is_a_prefix_of_the_full_ranking(pool, reference, k):
    deduped = dedupe_youngest(pool)
    full = rank_by_distance(deduped, reference, TIE_HEAVY)
    # rank_by_distance is a stable sort on the same key; with unique ids the
    # key is a total order, so the nsmallest selection must be its prefix.
    assert select_closest(pool, reference, TIE_HEAVY, k) == full[:k]


@given(
    pool=st.lists(descriptors, max_size=30),
    reference=profiles,
    k=st.integers(min_value=0, max_value=12),
    which=st.integers(min_value=0, max_value=len(PROXIMITIES) - 1),
)
@settings(max_examples=200, deadline=None)
def test_distance_cache_is_transparent_to_selection(pool, reference, k, which):
    """The overlay hot path ranks through DistanceCache; results must be
    bit-identical to ranking through the raw proximity."""
    proximity = PROXIMITIES[which]
    cached = DistanceCache(proximity, reference)
    direct = select_closest(pool, reference, proximity, k)
    assert select_closest(pool, reference, cached, k) == direct
    # And again, exercising warm-cache hits.
    assert select_closest(pool, reference, cached, k) == direct


@given(
    pool=st.lists(descriptors, max_size=30),
    reference=profiles,
    other=profiles,
    k=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=200, deadline=None)
def test_distance_cache_passes_through_foreign_references(pool, reference, other, k):
    """Partner-referenced rankings (buffer selection for the *partner's*
    profile) flow through the cache unmemoized and unchanged."""
    cached = DistanceCache(EXACT, reference)
    assert select_closest(pool, other, cached, k) == select_closest(
        pool, other, EXACT, k
    )


@given(pool=st.lists(descriptors, max_size=30))
@settings(max_examples=100, deadline=None)
def test_dedupe_keeps_exactly_one_youngest_copy_per_id(pool):
    deduped = dedupe_youngest(pool)
    ids = [d.node_id for d in deduped]
    assert len(ids) == len(set(ids))
    for descriptor in deduped:
        same = [d.age for d in pool if d.node_id == descriptor.node_id]
        assert descriptor.age == min(same)
