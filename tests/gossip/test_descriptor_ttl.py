"""Eventual purge of dead descriptors from Vicinity views (TTL hygiene)."""

from __future__ import annotations

from repro.gossip.selection import Proximity
from repro.gossip.vicinity import Vicinity
from repro.shapes import make_shape
from tests.gossip.helpers import GossipWorld


def clique_world(n, seed=1, ttl=None):
    """A single clique overlay — the uniform metric that used to harbour
    zombie descriptors."""
    shape = make_shape("clique")
    proximity = Proximity(shape.metric(n))

    def extra(node, index):
        node.attach(
            "clique",
            Vicinity(
                node.node_id,
                profile=index,
                proximity=proximity,
                layer="clique",
                target_degree=n - 1,
                descriptor_ttl=ttl,
            ),
        )

    return GossipWorld(n, seed=seed, extra=extra)


class TestDescriptorTtl:
    def test_default_ttl_derived_from_view(self):
        world = clique_world(8)
        protocol = world.nodes[0].protocol("clique")
        assert protocol.descriptor_ttl == max(24, 2 * protocol.params.view_size)

    def test_dead_lowest_id_eventually_purged_everywhere(self):
        """The zombie scenario distilled: kill the most attractive member
        of a clique and require every live view to forget it within a TTL
        window."""
        n = 10
        world = clique_world(n, seed=3, ttl=10)
        world.run(15)
        victim = 0  # lowest id: maximally attractive under the id tie-break
        world.network.kill(victim)
        world.run(10 + 8)  # TTL window plus slack
        for node in world.nodes[1:]:
            view_ids = node.protocol("clique").view.ids()
            assert victim not in view_ids, (
                f"node {node.node_id} still holds dead {victim}: {view_ids}"
            )

    def test_live_entries_survive_ttl(self):
        """TTL must not evict entries whose owners keep refreshing them."""
        n = 10
        world = clique_world(n, seed=4, ttl=10)
        world.run(40)  # several TTL windows
        for node in world.nodes:
            # A converged clique keeps everyone in view despite the TTL.
            assert len(node.protocol("clique").view) == n - 1
