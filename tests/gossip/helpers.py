"""Shared harness for gossip-protocol tests: tiny networks with stacks."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.gossip.peer_sampling import PeerSampling
from repro.sim.config import GossipParams
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport


class GossipWorld:
    """A small network where every node runs peer sampling plus optional
    extra layers supplied by a factory."""

    def __init__(
        self,
        n_nodes: int,
        seed: int = 1,
        params: Optional[GossipParams] = None,
        extra: Optional[Callable[[Node, int], None]] = None,
        bootstrap: bool = True,
    ):
        self.params = params or GossipParams(view_size=8, gossip_size=4, healer=1, swapper=3)
        self.network = Network()
        self.streams = RandomStreams(seed)
        self.transport = Transport()
        self.nodes: List[Node] = self.network.create_nodes(n_nodes)
        for index, node in enumerate(self.nodes):
            peer_sampling = PeerSampling(node.node_id, self.params)
            if bootstrap:
                peer_sampling.bootstrap(
                    self.streams.stream("bootstrap", node.node_id), self.network
                )
            node.attach("peer_sampling", peer_sampling)
            if extra is not None:
                extra(node, index)
        self.engine = Engine(self.network, self.transport, self.streams)

    def run(self, rounds: int) -> None:
        self.engine.run(rounds)

    def ps(self, node_index: int) -> PeerSampling:
        protocol = self.nodes[node_index].protocol("peer_sampling")
        assert isinstance(protocol, PeerSampling)
        return protocol
