"""Property-based tests for :class:`PartialView` invariants.

The view is the state of every gossip protocol, and this PR made its aging
lazy (an age-debt settled on demand) — so its invariants are pinned under
arbitrary operation sequences:

- at most ``capacity`` entries, at most one entry per node id;
- the youngest copy per node wins;
- tombstoned ids never resurrect from stale (age > 0) descriptors;
- id-index consistency: ``ids``/``in``/``len`` agree with ``descriptors``;
- lazy aging is observably identical to settling after every round.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.gossip.descriptors import Descriptor  # noqa: E402
from repro.gossip.views import PartialView  # noqa: E402

# Small id/age spaces so sequences collide (same id seen at several ages).
node_ids = st.integers(min_value=0, max_value=15)
ages = st.integers(min_value=0, max_value=8)
descriptors = st.builds(Descriptor, node_id=node_ids, age=ages)

# One step of a view's life. Tagged tuples keep examples shrinkable.
operations = st.one_of(
    st.tuples(st.just("insert"), descriptors),
    st.tuples(st.just("remove"), node_ids),
    st.tuples(st.just("purge"), node_ids),
    st.tuples(st.just("age"), st.just(None)),
    st.tuples(st.just("merge"), st.lists(descriptors, max_size=6)),
    st.tuples(st.just("replace"), st.lists(descriptors, max_size=6)),
    st.tuples(st.just("drop_oldest"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("discard_old"), st.integers(min_value=0, max_value=8)),
)


def apply(view: PartialView, op, payload) -> None:
    if op == "insert":
        view.insert(payload)
    elif op == "remove":
        view.remove(payload)
    elif op == "purge":
        view.purge(payload)
    elif op == "age":
        view.increase_age()
    elif op == "merge":
        view.merge(payload)
    elif op == "replace":
        view.replace(payload)
    elif op == "drop_oldest":
        view.drop_oldest(payload)
    elif op == "discard_old":
        view.discard_where(lambda d: d.age > payload)


@given(
    capacity=st.integers(min_value=1, max_value=6),
    ops=st.lists(operations, max_size=40),
)
@settings(max_examples=200, deadline=None)
def test_capacity_and_unique_ids_hold_under_any_sequence(capacity, ops):
    view = PartialView(capacity, tombstone_ttl=4)
    for op, payload in ops:
        apply(view, op, payload)
        entries = view.descriptors()
        assert len(entries) <= capacity
        ids = [d.node_id for d in entries]
        assert len(ids) == len(set(ids)), "duplicate node id in view"


@given(
    capacity=st.integers(min_value=1, max_value=6),
    ops=st.lists(operations, max_size=40),
)
@settings(max_examples=200, deadline=None)
def test_id_index_stays_consistent(capacity, ops):
    view = PartialView(capacity, tombstone_ttl=4)
    for op, payload in ops:
        apply(view, op, payload)
        entries = view.descriptors()
        assert sorted(view.ids()) == sorted(d.node_id for d in entries)
        assert len(view) == len(entries)
        for descriptor in entries:
            assert descriptor.node_id in view
            got = view.get(descriptor.node_id)
            assert got is not None and got.node_id == descriptor.node_id
        for absent in set(range(16)) - set(view.ids()):
            assert absent not in view
            assert view.get(absent) is None


@given(first=ages, second=ages, node_id=node_ids)
def test_youngest_copy_wins(first, second, node_id):
    view = PartialView(4)
    view.insert(Descriptor(node_id, age=first))
    view.insert(Descriptor(node_id, age=second))
    kept = view.get(node_id)
    assert kept is not None and kept.age == min(first, second)


@given(
    node_id=node_ids,
    stale_age=st.integers(min_value=1, max_value=8),
    rounds=st.integers(min_value=0, max_value=3),
)
def test_tombstones_never_resurrect_from_stale_copies(node_id, stale_age, rounds):
    view = PartialView(4, tombstone_ttl=8)
    view.insert(Descriptor(node_id, age=0))
    view.purge(node_id)
    for _ in range(rounds):
        view.increase_age()
    assert view.is_purged(node_id)
    assert not view.insert(Descriptor(node_id, age=stale_age))
    assert node_id not in view
    # Only an age-0 descriptor — the node announcing itself — lifts it.
    assert view.insert(Descriptor(node_id, age=0))
    assert not view.is_purged(node_id)


@given(ttl=st.integers(min_value=1, max_value=6), extra=st.integers(min_value=0, max_value=3))
def test_tombstones_expire_after_ttl_rounds(ttl, extra):
    view = PartialView(4, tombstone_ttl=ttl)
    view.purge(7)
    for _ in range(ttl - 1):
        view.increase_age()
    assert view.is_purged(7)
    for _ in range(1 + extra):
        view.increase_age()
    assert not view.is_purged(7)
    assert view.insert(Descriptor(7, age=5))


@given(
    capacity=st.integers(min_value=1, max_value=6),
    ops=st.lists(operations, max_size=40),
)
@settings(max_examples=200, deadline=None)
def test_lazy_aging_is_observably_identical_to_eager(capacity, ops):
    """Differential twin: one view settles after every round, one never
    settles until the final observation. Their observable states must match
    exactly (descriptor ages, ids, and tombstone status)."""
    lazy = PartialView(capacity, tombstone_ttl=4)
    eager = PartialView(capacity, tombstone_ttl=4)
    for op, payload in ops:
        apply(lazy, op, payload)
        apply(eager, op, payload)
        eager.descriptors()  # force settlement of any pending age debt
    snapshot = sorted((d.node_id, d.age) for d in lazy.descriptors())
    assert snapshot == sorted((d.node_id, d.age) for d in eager.descriptors())
    for node_id in range(16):
        assert lazy.is_purged(node_id) == eager.is_purged(node_id)
    assert (lazy.oldest() is None) == (eager.oldest() is None)
    if lazy.oldest() is not None:
        assert lazy.oldest() == eager.oldest()
        assert lazy.youngest() == eager.youngest()


@given(
    capacity=st.integers(min_value=1, max_value=4),
    ops=st.lists(operations, max_size=20),
    payload=st.lists(descriptors, max_size=10),
)
@settings(max_examples=200, deadline=None)
def test_replace_equals_entry_clear_plus_insert_loop(capacity, ops, payload):
    """The inlined fast paths of replace() must match its contract: drop
    the entries (tombstones survive), then insert each descriptor with the
    full youngest-wins / tombstone / eviction semantics."""
    fast = PartialView(capacity, tombstone_ttl=4)
    slow = PartialView(capacity, tombstone_ttl=4)
    for op, op_payload in ops:
        apply(fast, op, op_payload)
        apply(slow, op, op_payload)
    fast.replace(payload)
    slow.discard_where(lambda d: True)  # empty the entries, keep tombstones
    for descriptor in payload:
        slow.insert(descriptor)
    assert sorted((d.node_id, d.age) for d in fast.descriptors()) == sorted(
        (d.node_id, d.age) for d in slow.descriptors()
    )
    for node_id in range(16):
        assert fast.is_purged(node_id) == slow.is_purged(node_id)


@given(
    entries=st.lists(descriptors, max_size=12),
    k=st.integers(min_value=0, max_value=12),
    rounds=st.integers(min_value=0, max_value=3),
)
@settings(deadline=None)
def test_closest_equals_sorted_prefix(entries, k, rounds):
    """`closest` (heapq-based) must be exactly the sorted-ranking prefix."""
    view = PartialView(12)
    view.merge(entries)
    for _ in range(rounds):
        view.increase_age()
    key = lambda d: abs(d.node_id - 5)  # noqa: E731 — produces ties on purpose
    expected = sorted(view.descriptors(), key=lambda d: (key(d), d.node_id))[:k]
    assert view.closest(k, key) == expected


@given(entries=st.lists(descriptors, max_size=12), count=st.integers(min_value=0, max_value=12))
@settings(deadline=None)
def test_drop_oldest_removes_exactly_the_age_ranking_head(entries, count):
    view = PartialView(12)
    view.merge(entries)
    survivors = sorted(
        view.descriptors(), key=lambda d: (-d.age, d.node_id)
    )[count:]
    view.drop_oldest(count)
    assert sorted(view.descriptors(), key=lambda d: (-d.age, d.node_id)) == survivors
