"""Tests for the Vicinity overlay-construction protocol."""

from __future__ import annotations

import pytest

from repro.gossip.selection import FilteredProximity, Proximity
from repro.gossip.vicinity import Vicinity
from repro.shapes import make_shape
from tests.gossip.helpers import GossipWorld


def ring_world(n, seed=1, view_size=8, target_degree=2, random_layer="peer_sampling"):
    shape = make_shape("ring")
    proximity = Proximity(shape.metric(n))

    def extra(node, index):
        node.attach(
            "ring",
            Vicinity(
                node.node_id,
                profile=index,
                proximity=proximity,
                layer="ring",
                random_layer=random_layer,
                target_degree=target_degree,
            ),
        )

    world = GossipWorld(n, seed=seed, extra=extra)
    world.shape = shape
    return world


def ring_converged(world, n):
    adjacency = {}
    for index, node in enumerate(world.nodes):
        if not node.alive:
            continue
        adjacency[index] = [
            other for other in node.protocol("ring").neighbors()
        ]
    return world.shape.converged(adjacency, n)


class TestConvergence:
    def test_small_ring_converges(self):
        world = ring_world(32, seed=2)
        for round_index in range(40):
            world.run(1)
            if ring_converged(world, 32):
                break
        else:
            pytest.fail("ring did not converge in 40 rounds")
        assert round_index < 15

    def test_neighbors_are_the_closest_entries(self):
        world = ring_world(32, seed=3)
        world.run(20)
        node = world.nodes[10]
        assert sorted(node.protocol("ring").neighbors()) == [9, 11]

    def test_larger_ring_needs_more_rounds_but_converges(self):
        world = ring_world(128, seed=4)
        rounds = None
        for round_index in range(40):
            world.run(1)
            if ring_converged(world, 128):
                rounds = round_index + 1
                break
        assert rounds is not None


class TestSelfHealing:
    def test_recovers_after_failures(self):
        n = 48
        world = ring_world(n, seed=5)
        world.run(20)
        assert ring_converged(world, n)
        # Kill every 6th node; survivors must re-tighten around the holes.
        victims = [i for i in range(0, n, 6)]
        for victim in victims:
            world.network.kill(victim)
        world.run(25)
        live = [i for i in range(n) if world.network.is_alive(i)]
        for index in live:
            neighbors = world.nodes[index].protocol("ring").neighbors()
            assert all(world.network.is_alive(other) for other in neighbors)


class TestProfileManagement:
    def test_set_profile_discards_ineligible(self):
        proximity = FilteredProximity(
            lambda a, b: abs(a - b), lambda a, b: (a > 0) == (b > 0)
        )
        instance = Vicinity(0, profile=5, proximity=proximity, layer="v")
        from repro.gossip.descriptors import Descriptor

        instance.view.insert(Descriptor(1, 0, profile=4))
        instance.view.insert(Descriptor(2, 0, profile=-3))
        instance.set_profile(7)
        assert instance.view.ids() == [1]

    def test_set_profile_changes_ranking(self):
        world = ring_world(24, seed=6)
        world.run(15)
        protocol = world.nodes[0].protocol("ring")
        protocol.set_profile(12)
        world.run(10)
        neighbors = set(protocol.neighbors())
        assert neighbors & {11, 12, 13}

    def test_self_descriptor_carries_profile(self):
        instance = Vicinity(3, profile="coord", proximity=Proximity(lambda a, b: 0.0))
        descriptor = instance.self_descriptor()
        assert descriptor.node_id == 3
        assert descriptor.age == 0
        assert descriptor.profile == "coord"


class TestWithoutRandomLayer:
    def test_isolated_without_feed_and_empty_view(self):
        """No random layer and no seed view: the protocol cannot even pick a
        partner — the ablation case A2 documents this starvation."""
        world = ring_world(16, seed=7, random_layer=None)
        world.run(5)
        assert all(
            len(world.nodes[i].protocol("ring").view) == 0 for i in range(16)
        )

    def test_forget(self):
        world = ring_world(16, seed=8)
        world.run(10)
        protocol = world.nodes[0].protocol("ring")
        target = protocol.view.ids()[0]
        protocol.forget(target)
        assert target not in protocol.view.ids()


class TestBandwidth:
    def test_exchanges_are_accounted(self):
        world = ring_world(16, seed=9)
        world.run(4)
        assert world.transport.total_bytes("ring") > 0
        # Push-pull: every exchange records two messages.
        assert world.transport.total_messages("ring") % 2 == 0
