"""Tests for the T-Man overlay-construction protocol."""

from __future__ import annotations

import pytest

from repro.gossip.selection import Proximity
from repro.gossip.tman import TMan
from repro.shapes import make_shape
from tests.gossip.helpers import GossipWorld


def line_world(n, seed=1, psi=3):
    shape = make_shape("line")
    proximity = Proximity(shape.metric(n))

    def extra(node, index):
        node.attach(
            "tman",
            TMan(
                node.node_id,
                profile=index,
                proximity=proximity,
                layer="tman",
                psi=psi,
                target_degree=2,
            ),
        )

    world = GossipWorld(n, seed=seed, extra=extra)
    world.shape = shape
    return world


def line_converged(world, n):
    adjacency = {
        index: list(world.nodes[index].protocol("tman").neighbors())
        for index in range(n)
        if world.network.is_alive(index)
    }
    return world.shape.converged(adjacency, n)


class TestConvergence:
    def test_line_converges(self):
        n = 32
        world = line_world(n, seed=2)
        for _round in range(40):
            world.run(1)
            if line_converged(world, n):
                break
        else:
            pytest.fail("T-Man line did not converge in 40 rounds")

    def test_endpoints_have_single_neighbor_target(self):
        n = 24
        world = line_world(n, seed=3)
        world.run(25)
        first = world.nodes[0].protocol("tman").neighbors()
        assert 1 in first

    def test_psi_one_still_converges(self):
        n = 24
        world = line_world(n, seed=4, psi=1)
        for _ in range(40):
            world.run(1)
            if line_converged(world, n):
                return
        pytest.fail("psi=1 did not converge")


class TestRobustness:
    def test_dead_peers_dropped_from_view(self):
        n = 24
        world = line_world(n, seed=5)
        world.run(15)
        world.network.kill(5)
        world.run(10)
        for index in range(n):
            if not world.network.is_alive(index):
                continue
            protocol = world.nodes[index].protocol("tman")
            # Dead nodes may linger in deep view slots but never among the
            # exposed (target-degree) neighbours after the healing window.
            assert 5 not in protocol.neighbors() or index in (4, 6)

    def test_set_profile_flushes_and_reconverges(self):
        n = 16
        world = line_world(n, seed=6)
        world.run(15)
        protocol = world.nodes[0].protocol("tman")
        protocol.set_profile(8)
        world.run(10)
        assert set(protocol.neighbors()) & {7, 8, 9}

    def test_forget(self):
        world = line_world(16, seed=7)
        world.run(10)
        protocol = world.nodes[3].protocol("tman")
        victim = protocol.view.ids()[0]
        protocol.forget(victim)
        assert victim not in protocol.view.ids()


class TestAccounting:
    def test_bandwidth_recorded(self):
        world = line_world(12, seed=8)
        world.run(3)
        assert world.transport.total_bytes("tman") > 0
