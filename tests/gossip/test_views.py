"""Tests for bounded partial views, including property-based invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.gossip.descriptors import Descriptor
from repro.gossip.views import PartialView


def make_view(capacity, entries=()):
    return PartialView(capacity, [Descriptor(nid, age) for nid, age in entries])


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            PartialView(0)

    def test_insert_and_contains(self):
        view = PartialView(3)
        assert view.insert(Descriptor(1, 0))
        assert 1 in view
        assert 2 not in view
        assert len(view) == 1

    def test_get(self):
        view = make_view(3, [(1, 5)])
        assert view.get(1).age == 5
        assert view.get(9) is None

    def test_duplicate_keeps_youngest(self):
        view = make_view(3, [(1, 5)])
        assert view.insert(Descriptor(1, 2))
        assert view.get(1).age == 2
        assert not view.insert(Descriptor(1, 9))
        assert view.get(1).age == 2

    def test_overflow_evicts_oldest(self):
        view = make_view(2, [(1, 5), (2, 1)])
        assert view.insert(Descriptor(3, 0))
        assert 1 not in view
        assert {2, 3} == set(view.ids())

    def test_overflow_rejects_older_than_all(self):
        view = make_view(2, [(1, 1), (2, 2)])
        assert not view.insert(Descriptor(3, 9))
        assert 3 not in view

    def test_remove(self):
        view = make_view(3, [(1, 0)])
        assert view.remove(1)
        assert not view.remove(1)

    def test_merge_counts_changes(self):
        view = make_view(4, [(1, 3)])
        changed = view.merge([Descriptor(1, 1), Descriptor(2, 0), Descriptor(1, 9)])
        assert changed == 2

    def test_clear_and_replace(self):
        view = make_view(4, [(1, 0), (2, 0)])
        view.clear()
        assert len(view) == 0
        view.replace([Descriptor(5, 0), Descriptor(6, 0)])
        assert set(view.ids()) == {5, 6}

    def test_discard_where(self):
        view = make_view(4, [(1, 0), (2, 5), (3, 9)])
        removed = view.discard_where(lambda d: d.age > 3)
        assert removed == 2
        assert view.ids() == [1]

    def test_increase_age(self):
        view = make_view(3, [(1, 0), (2, 4)])
        view.increase_age()
        assert view.get(1).age == 1
        assert view.get(2).age == 5


class TestSelection:
    def test_oldest_and_youngest(self):
        view = make_view(4, [(1, 3), (2, 7), (3, 0)])
        assert view.oldest().node_id == 2
        assert view.youngest().node_id == 3

    def test_oldest_tie_breaks_lowest_id(self):
        view = make_view(4, [(5, 3), (2, 3)])
        assert view.oldest().node_id == 2

    def test_empty_selections(self):
        view = PartialView(2)
        rng = random.Random(0)
        assert view.oldest() is None
        assert view.youngest() is None
        assert view.random(rng) is None
        assert view.sample(rng, 3) == []

    def test_random_member(self):
        view = make_view(4, [(1, 0), (2, 0)])
        rng = random.Random(1)
        assert view.random(rng).node_id in (1, 2)

    def test_sample_without_replacement(self):
        view = make_view(8, [(i, 0) for i in range(8)])
        sample = view.sample(random.Random(2), 5)
        assert len(sample) == 5
        assert len({d.node_id for d in sample}) == 5

    def test_sample_more_than_size_returns_all(self):
        view = make_view(4, [(1, 0), (2, 0)])
        assert len(view.sample(random.Random(0), 10)) == 2

    def test_closest(self):
        view = make_view(8, [(i, 0) for i in range(8)])
        closest = view.closest(3, key=lambda d: abs(d.node_id - 5))
        assert [d.node_id for d in closest] == [5, 4, 6]

    def test_truncate_closest(self):
        view = make_view(8, [(i, 0) for i in range(8)])
        view.truncate_closest(2, key=lambda d: d.node_id)
        assert set(view.ids()) == {0, 1}

    def test_drop_oldest(self):
        view = make_view(8, [(1, 9), (2, 5), (3, 1)])
        view.drop_oldest(2)
        assert view.ids() == [3]
        view.drop_oldest(0)
        assert view.ids() == [3]

    def test_drop_random(self):
        view = make_view(8, [(i, 0) for i in range(6)])
        view.drop_random(random.Random(0), 4)
        assert len(view) == 2
        view.drop_random(random.Random(0), 99)
        assert len(view) == 0


class TestTombstones:
    def test_purge_removes_and_blocks_stale_reinsertion(self):
        view = make_view(4, [(1, 3), (2, 0)])
        assert view.purge(1)
        assert 1 not in view
        assert view.is_purged(1)
        assert not view.insert(Descriptor(1, 2))
        assert 1 not in view

    def test_purge_of_absent_node_still_tombstones(self):
        view = make_view(4)
        assert not view.purge(9)
        assert view.is_purged(9)
        assert not view.insert(Descriptor(9, 1))

    def test_age_zero_announcement_lifts_tombstone(self):
        view = make_view(4, [(1, 3)])
        view.purge(1)
        assert view.insert(Descriptor(1, 0))
        assert 1 in view
        assert not view.is_purged(1)
        # Once lifted, ordinary descriptors flow again.
        view.remove(1)
        assert view.insert(Descriptor(1, 5))

    def test_tombstone_expires_after_ttl_aging_steps(self):
        view = PartialView(4, tombstone_ttl=3)
        view.purge(1)
        view.increase_age()
        view.increase_age()
        assert view.is_purged(1)
        view.increase_age()
        assert not view.is_purged(1)
        assert view.insert(Descriptor(1, 7))

    def test_replace_keeps_tombstones(self):
        view = make_view(4, [(1, 0), (2, 0)])
        view.purge(3)
        view.replace([Descriptor(5, 0), Descriptor(3, 4)])
        assert 3 not in view  # stale id filtered by the surviving tombstone
        assert set(view.ids()) == {5}

    def test_clear_drops_tombstones(self):
        view = make_view(4, [(1, 0)])
        view.purge(2)
        view.clear()
        assert not view.is_purged(2)
        assert view.insert(Descriptor(2, 9))

    def test_ttl_validation(self):
        with pytest.raises(ConfigurationError):
            PartialView(4, tombstone_ttl=0)


# -- property-based invariants --------------------------------------------------

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "age", "drop_oldest"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), ops=operations)
def test_view_invariants_hold_under_any_operation_sequence(capacity, ops):
    """Capacity bound, id uniqueness, youngest-wins — under arbitrary ops."""
    view = PartialView(capacity)
    youngest_seen = {}
    for op, node_id, age in ops:
        if op == "insert":
            view.insert(Descriptor(node_id, age))
        elif op == "remove":
            view.remove(node_id)
        elif op == "age":
            view.increase_age()
        elif op == "drop_oldest":
            view.drop_oldest(1)
        # Invariant 1: never exceeds capacity.
        assert len(view) <= capacity
        # Invariant 2: one entry per node id.
        ids = view.ids()
        assert len(ids) == len(set(ids))


@settings(max_examples=80, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 20)), max_size=20
    )
)
def test_insert_keeps_youngest_per_node(entries):
    view = PartialView(50)  # big enough that capacity never interferes
    best = {}
    for node_id, age in entries:
        view.insert(Descriptor(node_id, age))
        best[node_id] = min(best.get(node_id, age), age)
    for node_id, age in best.items():
        assert view.get(node_id).age == age


purge_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "fresh_insert", "purge", "age", "remove"]),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=1, max_value=12),
    ),
    max_size=80,
)


@settings(max_examples=120, deadline=None)
@given(capacity=st.integers(min_value=1, max_value=8), ops=purge_ops)
def test_purged_descriptor_never_resurrected_without_fresh_announcement(
    capacity, ops
):
    """The pause/resume zombie property: once a node is purged (observed
    dead), no stale descriptor may re-enter the view until either the node
    itself announces with an age-0 descriptor (a resume) or the tombstone's
    TTL expires — whichever an adversarial gossip stream tries first."""
    ttl = 5
    view = PartialView(capacity, tombstone_ttl=ttl)
    tombstoned_for = {}  # node_id -> remaining aging steps
    for op, node_id, age in ops:
        if op == "insert":
            view.insert(Descriptor(node_id, age))  # stale copy (age >= 1)
        elif op == "fresh_insert":
            view.insert(Descriptor(node_id, 0))  # the owner announcing itself
            tombstoned_for.pop(node_id, None)
        elif op == "purge":
            view.purge(node_id)
            tombstoned_for[node_id] = ttl
        elif op == "age":
            view.increase_age()
            tombstoned_for = {
                nid: left - 1 for nid, left in tombstoned_for.items() if left > 1
            }
        elif op == "remove":
            view.remove(node_id)
        for nid, _ in tombstoned_for.items():
            assert nid not in view, (
                f"purged node {nid} resurrected by a stale descriptor"
            )


@settings(max_examples=60, deadline=None)
@given(
    capacity=st.integers(1, 6),
    entries=st.lists(st.tuples(st.integers(0, 30), st.integers(0, 9)), max_size=30),
)
def test_overflow_always_keeps_youngest_cohort(capacity, entries):
    """After arbitrary inserts, no evicted node can be younger than every
    kept entry (the eviction policy is oldest-first)."""
    view = PartialView(capacity)
    for node_id, age in entries:
        view.insert(Descriptor(node_id, age))
    if len(view) == capacity and entries:
        max_kept = max(d.age for d in view)
        # Any fresher-than-all candidate must be accepted.
        assert view.insert(Descriptor(999, max(0, max_kept - 1))) or max_kept == 0
