"""Tests for realized-topology analysis and export."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis import (
    component_subgraph,
    realized_graph,
    shape_accuracy,
    to_dot,
    to_edge_list,
    topology_summary,
)
from repro.analysis.graphs import degree_histogram
from repro.core import Runtime
from repro.experiments.topologies import star_of_cliques


@pytest.fixture(scope="module")
def mongo():
    deployment = Runtime(star_of_cliques(3, 10, 6), seed=8).deploy()
    assert deployment.run_until_converged(80).converged
    return deployment


class TestRealizedGraph:
    def test_nodes_carry_roles(self, mongo):
        graph = realized_graph(mongo)
        assert graph.number_of_nodes() == 36
        hub = mongo.role_map.members("router")[0][0]
        assert graph.nodes[hub]["component"] == "router"
        assert graph.nodes[hub]["rank"] == 0

    def test_converged_topology_is_connected(self, mongo):
        assert nx.is_connected(realized_graph(mongo))

    def test_link_edges_flagged(self, mongo):
        graph = realized_graph(mongo)
        links = [
            (a, b)
            for a, b, data in graph.edges(data=True)
            if data.get("kind") == "link"
        ]
        assert len(links) == 3

    def test_without_links_components_are_islands(self, mongo):
        graph = realized_graph(mongo, include_links=False)
        assert nx.number_connected_components(graph) == 4

    def test_dead_nodes_excluded(self, mongo):
        victim = mongo.role_map.member_ids("shard0")[3]
        mongo.network.kill(victim)
        try:
            graph = realized_graph(mongo)
            assert victim not in graph
        finally:
            mongo.network.revive(victim)


class TestComponentMetrics:
    def test_component_subgraph(self, mongo):
        sub = component_subgraph(mongo, "shard1")
        assert sub.number_of_nodes() == 10
        # converged clique: complete graph
        assert sub.number_of_edges() == 45

    def test_shape_accuracy_converged(self, mongo):
        for name in mongo.assembly.components:
            assert shape_accuracy(mongo, name) == 1.0

    def test_shape_accuracy_detects_damage(self, mongo):
        members = mongo.role_map.member_ids("shard2")
        victim = members[5]
        mongo.network.kill(victim)
        try:
            assert shape_accuracy(mongo, "shard2") < 1.0
        finally:
            mongo.network.revive(victim)

    def test_degree_histogram(self, mongo):
        histogram = degree_histogram(mongo, "core")
        assert sum(histogram.values()) == 36
        assert 9 in histogram  # clique members know their 9 peers


class TestSummary:
    def test_summary_keys(self, mongo):
        summary = topology_summary(mongo)
        assert summary["connected"] is True
        assert summary["links"] == 3
        assert summary["n_nodes"] == 36
        assert summary["diameter"] >= 2
        assert set(summary["accuracy"]) == set(mongo.assembly.components)
        assert all(value == 1.0 for value in summary["accuracy"].values())


class TestExport:
    def test_dot_structure(self, mongo):
        dot = to_dot(mongo)
        assert dot.startswith('graph "StarOfCliques"')
        assert dot.rstrip().endswith("}")
        assert dot.count("fillcolor") == 36
        assert "penwidth=3" in dot  # the realized links stand out

    def test_edge_list(self, mongo):
        text = to_edge_list(mongo)
        lines = [line for line in text.splitlines() if line]
        graph = realized_graph(mongo)
        assert len(lines) == graph.number_of_edges()
        kinds = {line.split()[2] for line in lines}
        assert kinds == {"overlay", "link"}
