"""Analysis behaviour on fresh (unconverged) deployments — no crashes,
honest numbers."""

from __future__ import annotations

from repro.analysis import realized_graph, shape_accuracy, topology_summary
from repro.core import Runtime
from repro.experiments.topologies import star_of_cliques


def fresh_deployment():
    return Runtime(star_of_cliques(2, 8, 6), seed=111).deploy()


class TestFreshDeployment:
    def test_graph_has_all_nodes_few_edges(self):
        deployment = fresh_deployment()
        graph = realized_graph(deployment)
        assert graph.number_of_nodes() == 22
        # Views start empty: almost nothing is realized at round 0.
        assert graph.number_of_edges() <= 22

    def test_accuracy_low_then_one(self):
        deployment = fresh_deployment()
        before = shape_accuracy(deployment, "shard0")
        deployment.run_until_converged(80)
        after = shape_accuracy(deployment, "shard0")
        assert before < after == 1.0

    def test_summary_reports_disconnection_honestly(self):
        deployment = fresh_deployment()
        summary = topology_summary(deployment)
        assert summary["connected"] is False
        assert summary["links"] == 0
        assert summary["diameter"] is not None  # of the largest island

    def test_summary_after_total_failure_of_component(self):
        deployment = fresh_deployment()
        deployment.run_until_converged(80)
        for node_id in deployment.role_map.member_ids("shard1"):
            deployment.network.kill(node_id)
        summary = topology_summary(deployment)
        assert summary["n_nodes"] == 22 - 8
        # Accuracy is measured against the *declared* shape: a fully dead
        # component realizes none of it.
        assert summary["accuracy"]["shard1"] == 0.0
        assert summary["accuracy"]["shard0"] == 1.0
