"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main

TOPOLOGY = """
topology CliDemo {
    nodes 24
    component ring : ring(size = 16) { port gate : lowest_id }
    component cell : clique(size = 8) { port gate : lowest_id }
    link ring.gate -- cell.gate
}
"""

BROKEN = "topology Broken { component a : dodecahedron }"


@pytest.fixture
def topology_file(tmp_path):
    path = tmp_path / "demo.topo"
    path.write_text(TOPOLOGY, encoding="utf-8")
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.topo"
    path.write_text(BROKEN, encoding="utf-8")
    return str(path)


class TestValidate:
    def test_ok(self, topology_file, capsys):
        assert main(["validate", topology_file]) == 0
        out = capsys.readouterr().out
        assert "CliDemo" in out
        assert "2 component(s)" in out

    def test_semantic_error(self, broken_file, capsys):
        assert main(["validate", broken_file]) == 2
        assert "unknown shape" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["validate", "/no/such/file.topo"]) == 2
        assert "error" in capsys.readouterr().err


class TestShowAndShapes:
    def test_show_round_trips(self, topology_file, capsys):
        assert main(["show", topology_file]) == 0
        printed = capsys.readouterr().out
        from repro.dsl import compile_source

        assert compile_source(printed).name == "CliDemo"

    def test_shapes_lists_builtins(self, capsys):
        assert main(["shapes"]) == 0
        out = capsys.readouterr().out.split()
        for name in ("ring", "star", "clique", "torus"):
            assert name in out


class TestRun:
    def test_run_converges(self, topology_file, capsys):
        assert main(["run", topology_file, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "converged: True" in out
        assert "bandwidth/node/round" in out

    def test_run_with_summary(self, topology_file, capsys):
        assert main(["run", topology_file, "--summary"]) == 0
        assert "'connected': True" in capsys.readouterr().out

    def test_run_budget_failure_exit_code(self, topology_file, capsys):
        assert main(["run", topology_file, "--max-rounds", "1"]) == 1


class TestExport:
    def test_export_dot_stdout(self, topology_file, capsys):
        assert main(["export", topology_file, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('graph "CliDemo"')

    def test_export_edges_to_file(self, topology_file, tmp_path, capsys):
        target = tmp_path / "edges.txt"
        assert (
            main(
                [
                    "export",
                    topology_file,
                    "--format",
                    "edges",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        content = target.read_text(encoding="utf-8")
        assert "link" in content
