"""Shared fixtures: small assemblies and fast runtime configurations."""

from __future__ import annotations

import pytest

from repro.core import Runtime, RuntimeConfig
from repro.dsl import TopologyBuilder
from repro.sim.config import GossipParams


@pytest.fixture
def fast_config() -> RuntimeConfig:
    """A runtime configuration tuned for small test deployments."""
    return RuntimeConfig(
        peer_sampling=GossipParams(view_size=12, gossip_size=6, healer=1, swapper=5),
        uo1=GossipParams(view_size=8, gossip_size=4, healer=1, swapper=3),
        core=GossipParams(view_size=10, gossip_size=5, healer=1, swapper=4),
    )


@pytest.fixture
def tiny_ring_assembly():
    """One 24-node ring component, no ports or links."""
    builder = TopologyBuilder("TinyRing")
    builder.component("ring", "ring", size=24)
    return builder.nodes(24).build()


@pytest.fixture
def two_component_assembly():
    """A linked pair: one ring and one clique, one link between them."""
    builder = TopologyBuilder("Pair")
    builder.component("ring", "ring", size=16).port("gate", "lowest_id")
    builder.component("cell", "clique", size=8).port("gate", "lowest_id")
    builder.link(("ring", "gate"), ("cell", "gate"))
    return builder.nodes(24).build()


@pytest.fixture
def deployed_pair(two_component_assembly, fast_config):
    """A converged deployment of the two-component assembly."""
    deployment = Runtime(two_component_assembly, config=fast_config, seed=11).deploy(24)
    report = deployment.run_until_converged(max_rounds=80)
    assert report.converged, f"fixture failed to converge: {report.rounds}"
    return deployment
