"""The scale bench: gate, trajectory merge, and CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.scale.bench import (
    ScaleDigestError,
    format_scale_bench,
    run_scale_bench,
    write_scale_bench,
)


@pytest.fixture(scope="module")
def ci_section():
    """One real ci-tier bench run, shared by the assertions below."""
    return run_scale_bench(tier="ci", master_seed=1)


@pytest.mark.slow
def test_ci_tier_passes_the_digest_gate(ci_section):
    assert ci_section["tier"] == "ci"
    assert len(ci_section["cells"]) == 2
    for cell in ci_section["cells"]:
        assert cell["digests_identical"] is True
        labels = [entry["label"] for entry in cell["configs"]]
        assert labels == ["serial-object", "serial-columnar", "sharded-columnar"]
        assert len({entry["wall_s"] >= 0 for entry in cell["configs"]}) == 1
        for entry in cell["configs"]:
            assert entry["rounds"] > 0
            assert entry["node_rounds_per_s"] > 0
            assert entry["messages"] == cell["configs"][0]["messages"]


@pytest.mark.slow
def test_write_merges_into_existing_trajectory(ci_section, tmp_path):
    path = tmp_path / "BENCH_gossip.json"
    path.write_text(json.dumps({"suite": "gossip", "workloads": []}))
    write_scale_bench(ci_section, json_path=str(path))
    data = json.loads(path.read_text())
    assert data["suite"] == "gossip"  # perf section preserved
    assert data["scale_tiers"]["ci"]["cells"][0]["workload"] == "ring-64"
    # Re-writing the same tier replaces it, not duplicates it.
    write_scale_bench(ci_section, json_path=str(path))
    assert list(json.loads(path.read_text())["scale_tiers"]) == ["ci"]


@pytest.mark.slow
def test_format_renders_every_config_row(ci_section):
    table = format_scale_bench(ci_section)
    assert "serial-object" in table and "sharded-columnar" in table
    assert "digests identical" in table


def test_perf_bench_rewrite_preserves_scale_tiers(tmp_path):
    from repro.perf.bench import BenchReport, write_bench

    path = tmp_path / "BENCH_gossip.json"
    path.write_text(json.dumps({"scale_tiers": {"ci": {"tier": "ci"}}}))
    report = BenchReport(scale="ci", master_seed=1, parallel=None)
    write_bench(report, json_path=str(path), results_dir=None)
    data = json.loads(path.read_text())
    assert data["scale_tiers"] == {"ci": {"tier": "ci"}}
    assert data["suite"] == "gossip"


def test_digest_error_is_a_runtime_error():
    assert issubclass(ScaleDigestError, RuntimeError)


@pytest.mark.slow
def test_cli_bench_scale_tier(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "bench.json"
    code = main(["bench", "scale", "--scale", "ci", "--output", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "scale tier ci" in printed
    data = json.loads(out.read_text())
    assert "ci" in data["scale_tiers"]
