"""Unit tests for the shard partition and the node-id interner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scale.columnar import NodeInterner
from repro.scale.engine import ShardPlan


class TestShardPlan:
    @pytest.mark.parametrize("n_nodes", [1, 2, 7, 64, 100, 1024])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_members_partition_all_ranks_exactly_once(self, n_nodes, n_shards):
        if n_shards > n_nodes:
            pytest.skip("more shards than nodes is rejected")
        plan = ShardPlan(n_nodes, n_shards)
        seen = []
        for shard in range(n_shards):
            seen.extend(plan.members(shard))
        assert seen == list(range(n_nodes))

    @pytest.mark.parametrize("n_nodes,n_shards", [(64, 3), (10, 4), (100, 7)])
    def test_shard_of_agrees_with_members(self, n_nodes, n_shards):
        plan = ShardPlan(n_nodes, n_shards)
        for shard in range(n_shards):
            for rank in plan.members(shard):
                assert plan.shard_of(rank) == shard

    def test_uneven_split_front_loads_the_remainder(self):
        plan = ShardPlan(64, 3)
        sizes = [len(plan.members(shard)) for shard in range(3)]
        assert sizes == [22, 21, 21]

    def test_contiguous_blocks(self):
        plan = ShardPlan(100, 7)
        for shard in range(7):
            members = plan.members(shard)
            assert list(members) == list(range(members.start, members.stop))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            ShardPlan(0, 1)
        with pytest.raises(ConfigurationError):
            ShardPlan(4, 0)
        with pytest.raises(ConfigurationError):
            ShardPlan(4, 5)
        with pytest.raises(ConfigurationError):
            ShardPlan(4, 2).members(2)
        with pytest.raises(ConfigurationError):
            ShardPlan(4, 2).shard_of(4)


class TestNodeInterner:
    def test_round_trip(self):
        interner = NodeInterner()
        assert interner.intern("alpha") == 0
        assert interner.intern("beta") == 1
        assert interner.intern("alpha") == 0  # idempotent
        assert interner.index_of("beta") == 1
        assert interner.resolve(0) == "alpha"
        assert len(interner) == 2
        assert "alpha" in interner and "gamma" not in interner

    def test_seeded_from_iterable(self):
        interner = NodeInterner(range(5))
        assert [interner.index_of(node_id) for node_id in range(5)] == list(range(5))

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            NodeInterner().index_of("missing")
