"""Digest regression: the scale engine's determinism gate.

For a fixed ``(workload, seed)`` the overlay digest must be byte-identical
across view backend, shard count (even/uneven partitions), and execution
mode — that invariance is what licenses running the 10k tier sharded at
all. Fixed round counts keep the tier-1 cells fast; the full convergence
runs live in the scale bench.
"""

from __future__ import annotations

import pytest

from repro.perf.digest import adjacency_digest, result_digest
from repro.scale.engine import ShardedEngine


def digest_after(
    shape: str, n_nodes: int, rounds: int, *, backend="object", n_shards=1, mode="inline"
) -> str:
    with ShardedEngine(
        workload=f"{shape}-{n_nodes}",
        shape=shape,
        n_nodes=n_nodes,
        seed=7,
        backend=backend,
        n_shards=n_shards,
        mode=mode,
    ) as engine:
        for _ in range(rounds):
            engine.run_round()
        return engine.digest()


@pytest.mark.parametrize("shape,n_nodes", [("ring", 64), ("grid", 64)])
def test_serial_and_sharded_digests_are_identical(shape, n_nodes):
    serial = digest_after(shape, n_nodes, 5)
    for n_shards in (2, 4):
        assert digest_after(shape, n_nodes, 5, n_shards=n_shards) == serial


def test_shard_count_invariance_with_uneven_partition():
    # 64 nodes over 3 shards splits 22/21/21 — the uneven case.
    assert digest_after("ring", 64, 5, n_shards=1) == digest_after(
        "ring", 64, 5, n_shards=3
    )


def test_backend_invariance():
    assert digest_after("ring", 64, 5, backend="object") == digest_after(
        "ring", 64, 5, backend="columnar"
    )


def test_sharded_columnar_matches_serial_object():
    # The bench gate's exact triple, in miniature.
    serial_object = digest_after("grid", 64, 4, backend="object", n_shards=1)
    serial_columnar = digest_after("grid", 64, 4, backend="columnar", n_shards=1)
    sharded_columnar = digest_after("grid", 64, 4, backend="columnar", n_shards=4)
    assert serial_object == serial_columnar == sharded_columnar


def test_process_pool_matches_inline():
    inline = digest_after("ring", 48, 4, backend="columnar", n_shards=2)
    with ShardedEngine(
        workload="ring-48",
        shape="ring",
        n_nodes=48,
        seed=7,
        backend="columnar",
        n_shards=2,
        mode="mp",
    ) as engine:
        if engine.mode_used != "mp":
            pytest.skip("process pool unavailable in this environment")
        for _ in range(4):
            engine.run_round()
        assert engine.digest() == inline


def test_runs_are_reproducible_and_seed_sensitive():
    first = digest_after("ring", 48, 3)
    again = digest_after("ring", 48, 3)
    assert first == again
    with ShardedEngine(
        workload="ring-48", shape="ring", n_nodes=48, seed=8
    ) as engine:
        for _ in range(3):
            engine.run_round()
        assert engine.digest() != first


def test_digest_hashes_full_adjacency():
    with ShardedEngine(
        workload="ring-48", shape="ring", n_nodes=48, seed=7, n_shards=3
    ) as engine:
        engine.run_round()
        record = engine.adjacency()
        assert sorted(record) == list(range(48))
        assert set(record[0]) == {"peer_sampling", "overlay"}
        assert engine.digest() == adjacency_digest(record)
        assert adjacency_digest(record) == result_digest(record)


def test_transport_accounting_is_mode_invariant():
    engines = {}
    for n_shards in (1, 3):
        with ShardedEngine(
            workload="ring-48", shape="ring", n_nodes=48, seed=7, n_shards=n_shards
        ) as engine:
            for _ in range(3):
                engine.run_round()
            engines[n_shards] = (engine.messages, engine.bytes)
    assert engines[1] == engines[3]
    messages, byte_count = engines[1]
    assert messages > 0 and byte_count > messages  # header + descriptors
