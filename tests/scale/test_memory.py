"""The memory ceiling: a 1k-node columnar run stays under its budget.

The budget is recorded in BENCH_gossip.json's ``scale_tiers.1k.memory``
section by ``repro bench --scale 1k`` (tracemalloc peak of the columnar
serial cell, times two). This test re-measures under tracemalloc and holds
the line — a representation change that doubles Python-level allocations
fails here before it reaches the bench.
"""

from __future__ import annotations

import json
import pathlib
import tracemalloc

import pytest

from repro.scale.workloads import ScaleWorkload, run_scale_workload

TRAJECTORY = pathlib.Path(__file__).resolve().parents[2] / "BENCH_gossip.json"


def recorded_budget():
    if not TRAJECTORY.exists():
        pytest.skip("no BENCH_gossip.json trajectory in this checkout")
    data = json.loads(TRAJECTORY.read_text())
    memory = data.get("scale_tiers", {}).get("1k", {}).get("memory")
    if memory is None:
        pytest.skip("no 1k memory budget recorded; run `repro bench --scale 1k`")
    return memory


@pytest.mark.slow
def test_1k_columnar_run_stays_under_recorded_budget():
    memory = recorded_budget()
    workload = ScaleWorkload(
        memory["workload"], memory["workload"].split("-")[0], memory["n_nodes"], 90
    )
    tracemalloc.start()
    try:
        result = run_scale_workload(workload, seed=_probe_seed(workload), backend="columnar")
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert result.executed > 0
    budget = memory["tracemalloc_budget_bytes"]
    assert peak <= budget, (
        f"1k columnar run peaked at {peak} bytes "
        f"(recorded budget {budget}, measured baseline "
        f"{memory['tracemalloc_peak_bytes']})"
    )


def _probe_seed(workload: ScaleWorkload) -> int:
    from repro.sim.rng import spawn_seeds

    return spawn_seeds(1, 1, "scale-bench", workload.name)[0]
