"""Sharded-engine phase spans: observable timing, invariant digests."""

from __future__ import annotations

from repro.obs.collector import Collector
from repro.runtime.api import RunnerConfig, make_runner


def build(obs=None, **overrides):
    config = RunnerConfig(
        kind="sharded",
        workload="elementary",
        shape="ring",
        n_nodes=24,
        seed=5,
        n_shards=overrides.pop("n_shards", 3),
        **overrides,
    )
    return make_runner(config, obs=obs)


def test_phase_spans_recorded_per_round():
    collector = Collector(gauge_every=0)
    with build(obs=collector) as runner:
        runner.run(4)
        executed = runner.round
    names = collector.spans.names()
    for name in ("round", "shard:request", "shard:respond", "shard:absorb",
                 "shard:barrier"):
        assert name in names
    # Two layers per round; the barrier closes twice per layer.
    assert collector.spans.counts["round"] == executed
    assert collector.spans.counts["shard:request"] == 2 * executed
    assert collector.spans.counts["shard:barrier"] == 4 * executed


def test_traffic_gauges_published():
    collector = Collector(gauge_every=0)
    with build(obs=collector) as runner:
        runner.run(2)
        assert collector.gauge_value("shard_messages") == runner.messages
        assert collector.gauge_value("shard_bytes") == runner.bytes


def test_digest_identical_with_and_without_obs():
    """Phase spans are observation only — the digest invariant must hold."""
    with build() as bare:
        bare.run(6)
        bare_digest = bare.digest()
        bare_round = bare.round
    collector = Collector(gauge_every=0)
    with build(obs=collector) as observed:
        observed.run(6)
        assert observed.round == bare_round
        assert observed.digest() == bare_digest
    assert collector.spans.totals  # and the spans were really on


def test_make_runner_leaves_obs_unset_by_default():
    with build() as runner:
        assert runner.obs is None
