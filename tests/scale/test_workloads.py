"""The scale workload matrix and its runner."""

from __future__ import annotations

import pytest

from repro.scale.workloads import (
    ScaleWorkload,
    run_scale_workload,
    scale_matrix,
)


def test_matrix_tiers():
    ci = scale_matrix("ci")
    assert all(w.n_nodes <= 64 for w in ci)
    assert {w.shape for w in ci} == {"ring", "grid"}
    assert all(w.n_nodes == 1024 for w in scale_matrix("1k"))
    tenk = scale_matrix("10k")
    assert len(tenk) == 1 and tenk[0].n_nodes == 10000
    assert scale_matrix("unknown") == ci


def test_run_scale_workload_converges_and_reports():
    workload = ScaleWorkload("ring-64", "ring", 64)
    result = run_scale_workload(workload, seed=3)
    assert result.rounds_to_converge is not None
    assert result.executed == result.rounds_to_converge <= workload.max_rounds
    assert result.messages > 0 and result.bytes > 0
    assert len(result.digest) == 64
    assert result.mode == "inline" and result.n_shards == 1
    record = result.to_dict()
    assert record["workload"] == "ring-64" and record["backend"] == "object"


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_result_is_a_pure_function_of_workload_and_seed(backend):
    workload = ScaleWorkload("ring-48", "ring", 48, max_rounds=20)
    first = run_scale_workload(workload, seed=5, backend=backend)
    second = run_scale_workload(workload, seed=5, backend=backend, n_shards=3)
    assert first.to_dict() == {**second.to_dict(), "n_shards": 1}


def test_workloads_pickle():
    import pickle

    workload = ScaleWorkload("ring-64", "ring", 64)
    assert pickle.loads(pickle.dumps(workload)) == workload
