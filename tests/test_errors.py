"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    AssemblyError,
    ConfigurationError,
    ConvergenceTimeout,
    DslError,
    DslSemanticError,
    DslSyntaxError,
    ReproError,
    SimulationError,
    TopologyError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            ConfigurationError,
            SimulationError,
            TopologyError,
            AssemblyError,
            DslError,
            DslSemanticError,
            ConvergenceTimeout,
        ],
    )
    def test_everything_is_a_repro_error(self, exc_class):
        try:
            if exc_class is ConvergenceTimeout:
                raise exc_class("layer", 10)
            raise exc_class("boom")
        except ReproError:
            pass

    def test_assembly_error_is_topology_error(self):
        assert issubclass(AssemblyError, TopologyError)

    def test_dsl_errors_are_dsl_errors(self):
        assert issubclass(DslSyntaxError, DslError)
        assert issubclass(DslSemanticError, DslError)

    def test_one_except_catches_all(self):
        with pytest.raises(ReproError):
            raise DslSyntaxError("bad", 1, 2)


class TestMessages:
    def test_syntax_error_carries_location(self):
        error = DslSyntaxError("unexpected token", line=3, column=9)
        assert error.line == 3
        assert error.column == 9
        assert "(line 3, column 9)" in str(error)

    def test_syntax_error_without_location(self):
        error = DslSyntaxError("bad input")
        assert "line" not in str(error)

    def test_convergence_timeout_message(self):
        error = ConvergenceTimeout("core", 120)
        assert error.layer == "core"
        assert error.rounds == 120
        assert "core" in str(error) and "120" in str(error)
