"""Tests for the CLI's bench dispatch (drivers monkeypatched for speed)."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def fast_drivers(monkeypatch):
    """Replace every experiment driver with an instant stub."""
    calls = []

    def stub_runner(name):
        def run(*args, **kwargs):
            calls.append(name)
            return f"<{name} result>"

        return run

    def stub_formatter(name):
        def fmt(result):
            return f"TABLE[{name}]"

        return fmt

    import repro.experiments.fig2 as fig2
    import repro.experiments.fig3 as fig3
    import repro.experiments.fig4 as fig4
    import repro.experiments.reconfiguration as reconf
    import repro.experiments.ring_of_rings as rings

    monkeypatch.setattr(fig2, "run_fig2", stub_runner("fig2"))
    monkeypatch.setattr(fig2, "format_fig2", stub_formatter("fig2"))
    monkeypatch.setattr(fig3, "run_fig3", stub_runner("fig3"))
    monkeypatch.setattr(fig3, "format_fig3", stub_formatter("fig3"))
    monkeypatch.setattr(fig4, "run_fig4", stub_runner("fig4"))
    monkeypatch.setattr(fig4, "format_fig4", stub_formatter("fig4"))
    monkeypatch.setattr(rings, "run_ring_of_rings", stub_runner("e2"))
    monkeypatch.setattr(rings, "format_ring_of_rings", stub_formatter("e2"))
    monkeypatch.setattr(reconf, "run_reconfiguration", stub_runner("e3"))
    monkeypatch.setattr(reconf, "format_reconfiguration", stub_formatter("e3"))
    return calls


class StubReport:
    """Just enough of a BenchReport for the CLI's obs handling."""

    def __init__(self, obs=None, obs_collector=None):
        self.obs = obs
        self.obs_collector = obs_collector


@pytest.fixture
def fast_bench(monkeypatch):
    """Replace the gossip bench harness with an instant stub."""
    calls = {}

    import repro.perf.bench as bench

    def stub_run_bench(scale, seeds, master_seed, parallel, obs=False):
        calls["run"] = dict(
            scale=scale,
            seeds=seeds,
            master_seed=master_seed,
            parallel=parallel,
            obs=obs,
        )
        return StubReport()

    def stub_write_bench(report, json_path):
        calls["write"] = dict(report=report, json_path=json_path)
        return [json_path, "benchmarks/results/bench_gossip.txt"]

    monkeypatch.setattr(bench, "run_bench", stub_run_bench)
    monkeypatch.setattr(bench, "format_bench", lambda report: "TABLE[gossip]")
    monkeypatch.setattr(bench, "write_bench", stub_write_bench)
    return calls


@pytest.mark.parametrize("target", ["fig2", "fig3", "fig4", "e2", "e3"])
def test_bench_dispatch(fast_drivers, capsys, target):
    assert main(["bench", target]) == 0
    out = capsys.readouterr().out
    assert "TABLE[" in out


def test_bench_defaults_to_the_gossip_matrix(fast_bench, capsys):
    assert main(["bench"]) == 0
    out = capsys.readouterr().out
    assert "TABLE[gossip]" in out
    assert "wrote BENCH_gossip.json" in out
    assert fast_bench["run"] == dict(
        scale="ci", seeds=None, master_seed=1, parallel=None, obs=False
    )


def test_bench_gossip_forwards_options(fast_bench, capsys):
    assert (
        main(
            [
                "bench",
                "gossip",
                "--scale",
                "full",
                "--seeds",
                "3",
                "--seed",
                "9",
                "--parallel",
                "2",
                "--output",
                "out/bench.json",
            ]
        )
        == 0
    )
    assert fast_bench["run"] == dict(
        scale="full", seeds=3, master_seed=9, parallel=2, obs=False
    )
    assert fast_bench["write"]["json_path"] == "out/bench.json"
    assert "wrote out/bench.json" in capsys.readouterr().out


def test_bench_obs_flag_requests_the_instrumented_pass(
    fast_bench, monkeypatch, tmp_path, capsys
):
    import repro.perf.bench as bench
    from repro.obs.collector import Collector

    collector = Collector(gauge_every=0)
    collector.emit("deploy", nodes=8)
    report = StubReport(
        obs={"digests_identical": True, "overhead_fraction": 0.01},
        obs_collector=collector,
    )
    monkeypatch.setattr(
        bench, "run_bench", lambda **kwargs: fast_bench["run"].update(kwargs) or report
    )
    fast_bench["run"] = {}
    jsonl = tmp_path / "bench.jsonl"
    assert main(["bench", "gossip", "--obs", str(jsonl)]) == 0
    assert fast_bench["run"]["obs"] is True
    out = capsys.readouterr().out
    assert "digests identical" in out
    assert jsonl.exists()
    assert (tmp_path / "bench.jsonl.prom").exists()


def test_bench_rejects_unknown_target(capsys):
    with pytest.raises(SystemExit):
        main(["bench", "fig9"])
