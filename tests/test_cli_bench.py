"""Tests for the CLI's bench dispatch (drivers monkeypatched for speed)."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def fast_drivers(monkeypatch):
    """Replace every experiment driver with an instant stub."""
    calls = []

    def stub_runner(name):
        def run(*args, **kwargs):
            calls.append(name)
            return f"<{name} result>"

        return run

    def stub_formatter(name):
        def fmt(result):
            return f"TABLE[{name}]"

        return fmt

    import repro.experiments.fig2 as fig2
    import repro.experiments.fig3 as fig3
    import repro.experiments.fig4 as fig4
    import repro.experiments.reconfiguration as reconf
    import repro.experiments.ring_of_rings as rings

    monkeypatch.setattr(fig2, "run_fig2", stub_runner("fig2"))
    monkeypatch.setattr(fig2, "format_fig2", stub_formatter("fig2"))
    monkeypatch.setattr(fig3, "run_fig3", stub_runner("fig3"))
    monkeypatch.setattr(fig3, "format_fig3", stub_formatter("fig3"))
    monkeypatch.setattr(fig4, "run_fig4", stub_runner("fig4"))
    monkeypatch.setattr(fig4, "format_fig4", stub_formatter("fig4"))
    monkeypatch.setattr(rings, "run_ring_of_rings", stub_runner("e2"))
    monkeypatch.setattr(rings, "format_ring_of_rings", stub_formatter("e2"))
    monkeypatch.setattr(reconf, "run_reconfiguration", stub_runner("e3"))
    monkeypatch.setattr(reconf, "format_reconfiguration", stub_formatter("e3"))
    return calls


@pytest.mark.parametrize("target", ["fig2", "fig3", "fig4", "e2", "e3"])
def test_bench_dispatch(fast_drivers, capsys, target):
    assert main(["bench", target]) == 0
    out = capsys.readouterr().out
    assert "TABLE[" in out


def test_bench_rejects_unknown_target(capsys):
    with pytest.raises(SystemExit):
        main(["bench", "fig9"])
