"""The bench regression gate: check_bench and the --check CLI path."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.bench import check_bench, format_check


def cell(name, mean, **extra):
    return {"name": name, "wall_time_s": {"mean": mean, "min": mean, "max": mean},
            **extra}


def trajectory(*cells):
    return {"schema": 1, "suite": "gossip", "workloads": list(cells)}


class TestCheckBench:
    def test_within_tolerance_passes(self):
        baseline = trajectory(cell("ring-64", 1.0))
        current = trajectory(cell("ring-64", 1.19))
        assert check_bench(current, baseline, tolerance=0.20) == []

    def test_regression_past_tolerance_flags(self):
        baseline = trajectory(cell("ring-64", 1.0), cell("grid-64", 2.0))
        current = trajectory(cell("ring-64", 1.5), cell("grid-64", 2.1))
        regressions = check_bench(current, baseline, tolerance=0.20)
        assert [entry["name"] for entry in regressions] == ["ring-64"]
        assert regressions[0]["ratio"] == pytest.approx(1.5)

    def test_speedup_never_flags(self):
        baseline = trajectory(cell("ring-64", 2.0))
        assert check_bench(trajectory(cell("ring-64", 0.5)), baseline) == []

    def test_new_cell_is_not_a_regression(self):
        baseline = trajectory(cell("ring-64", 1.0))
        current = trajectory(cell("ring-64", 1.0), cell("torus-256", 9.9))
        assert check_bench(current, baseline) == []

    def test_zero_or_missing_baseline_mean_skipped(self):
        baseline = trajectory(cell("ring-64", 0.0), {"name": "grid-64"})
        current = trajectory(cell("ring-64", 5.0), cell("grid-64", 5.0))
        assert check_bench(current, baseline) == []

    def test_accepts_a_report_object(self):
        class Report:
            def to_dict(self):
                return trajectory(cell("ring-64", 3.0))

        baseline = trajectory(cell("ring-64", 1.0))
        assert len(check_bench(Report(), baseline)) == 1

    def test_format_check_lines(self):
        assert "OK" in format_check([])
        rendered = format_check(
            check_bench(
                trajectory(cell("ring-64", 2.0)), trajectory(cell("ring-64", 1.0))
            )
        )
        assert "ring-64" in rendered and "2.00x" in rendered


class TestCheckCli:
    @pytest.fixture
    def stub_bench(self, monkeypatch):
        import repro.perf.bench as bench

        state = {"current": trajectory(cell("ring-64", 1.0))}

        class Report:
            obs = None

            def to_dict(self):
                return state["current"]

        monkeypatch.setattr(bench, "run_bench", lambda **kwargs: Report())
        monkeypatch.setattr(bench, "format_bench", lambda report: "TABLE")
        monkeypatch.setattr(
            bench,
            "write_bench",
            lambda report, json_path: pytest.fail("--check must not rewrite"),
        )
        return state

    def test_check_passes_against_identical_baseline(
        self, stub_bench, tmp_path, capsys
    ):
        baseline = tmp_path / "BENCH_gossip.json"
        baseline.write_text(json.dumps(stub_bench["current"]), encoding="utf-8")
        assert main(["bench", "--check", "--output", str(baseline)]) == 0
        assert "bench check: OK" in capsys.readouterr().out

    def test_check_fails_on_regression(self, stub_bench, tmp_path, capsys):
        baseline = tmp_path / "BENCH_gossip.json"
        baseline.write_text(
            json.dumps(trajectory(cell("ring-64", 0.5))), encoding="utf-8"
        )
        assert main(["bench", "--check", "--output", str(baseline)]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_check_honors_tolerance(self, stub_bench, tmp_path):
        baseline = tmp_path / "BENCH_gossip.json"
        baseline.write_text(
            json.dumps(trajectory(cell("ring-64", 0.8))), encoding="utf-8"
        )
        assert main(
            ["bench", "--check", "--output", str(baseline), "--tolerance", "0.5"]
        ) == 0

    def test_check_without_baseline_errors(self, stub_bench, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["bench", "--check", "--output", str(missing)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err
