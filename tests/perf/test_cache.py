"""Unit tests for the memoized distance cache on the overlay hot path."""

from __future__ import annotations

from repro.gossip.selection import FilteredProximity, Proximity
from repro.perf.cache import _MAX_ENTRIES, DistanceCache


class CountingProximity(Proximity):
    """Counts underlying distance evaluations."""

    def __init__(self):
        super().__init__(lambda a, b: abs(a - b))
        self.calls = 0

    def distance(self, a, b):
        self.calls += 1
        return super().distance(a, b)


def test_memoizes_self_referenced_distances():
    base = CountingProximity()
    cache = DistanceCache(base, reference=10)
    assert cache.to(3) == 7
    assert cache.to(3) == 7
    assert cache.to(3) == 7
    assert base.calls == 1
    assert cache.hits == 2
    assert cache.misses == 1


def test_distance_passes_through_for_foreign_reference():
    base = CountingProximity()
    cache = DistanceCache(base, reference=10)
    # Ranking for a partner's profile must not be memoized against ours.
    assert cache.distance(4, 6) == 2
    assert cache.distance(4, 6) == 2
    assert base.calls == 2
    # But the self-referenced form routes into the memo.
    assert cache.distance(10, 6) == 4
    assert cache.distance(10, 6) == 4
    assert base.calls == 3


def test_rebind_invalidates_the_memo():
    base = CountingProximity()
    cache = DistanceCache(base, reference=10)
    assert cache.to(5) == 5
    cache.rebind(0)
    assert cache.to(5) == 5
    assert base.calls == 2
    assert cache.distance(0, 5) == 5  # new reference is now the cached one
    assert base.calls == 2


def test_eligibility_delegates_to_base():
    base = FilteredProximity(lambda a, b: abs(a - b), lambda a, b: b % 2 == 0)
    cache = DistanceCache(base, reference=1)
    assert cache.eligible(1, 4)
    assert not cache.eligible(1, 3)


def test_unhashable_profiles_disable_caching_without_changing_results():
    base = CountingProximity()
    base._distance = lambda a, b: abs(a[0] - b[0])  # list profiles
    cache = DistanceCache(base, reference=[10])
    assert cache.to([3]) == 7
    assert cache.to([3]) == 7
    assert base.calls == 2  # every call hits the base: no memo, same values


def test_cache_bounded_by_max_entries():
    base = CountingProximity()
    cache = DistanceCache(base, reference=0)
    for profile in range(_MAX_ENTRIES + 10):
        cache.to(profile)
    # Overflow clears rather than grows without bound.
    assert len(cache._cache) <= _MAX_ENTRIES
    assert cache.to(1) == 1  # still correct afterwards
