"""Tests for the bench harness: workload matrix, report schema, artifacts."""

from __future__ import annotations

import json

from repro.perf.bench import (
    SEEDS_PER_SCALE,
    BenchReport,
    WorkloadSummary,
    format_bench,
    run_bench,
    write_bench,
)
from repro.perf.workloads import Workload, run_workload, workload_matrix


def test_workload_matrices_are_fixed_and_distinct():
    ci = workload_matrix("ci")
    full = workload_matrix("full")
    assert ci and full and ci != full
    for matrix in (ci, full):
        names = [w.name for w in matrix]
        assert len(names) == len(set(names))
        for workload in matrix:
            assert workload.name == f"{workload.shape}-{workload.n_nodes}"
    # Default scale is ci (unknown scales fall back to it too).
    assert workload_matrix() == ci


def test_run_workload_produces_complete_result():
    result = run_workload(Workload("ring-32", "ring", 32), seed=3)
    record = result.to_dict()
    assert record["workload"] == "ring-32"
    assert record["seed"] == 3
    assert record["rounds_to_converge"] is not None
    assert record["executed"] >= record["rounds_to_converge"]
    assert record["messages"] > 0
    assert record["bytes"] > 0
    assert record["peak_view_size"] > 0
    assert len(record["digest"]) == 64  # sha256 hex


def _tiny_report() -> BenchReport:
    """A hand-built report so artifact tests stay instant."""
    workload = Workload("ring-32", "ring", 32)
    results = [run_workload(workload, seed).to_dict() for seed in (1, 2)]
    return BenchReport(
        scale="ci",
        master_seed=1,
        parallel=1,
        summaries=[
            WorkloadSummary(
                workload=workload,
                seeds=(1, 2),
                results=results,
                wall_times=[0.01, 0.02],
            )
        ],
    )


def test_report_dict_carries_the_required_trajectory_fields():
    cell = _tiny_report().to_dict()
    assert cell["schema"] == 1
    assert cell["suite"] == "gossip"
    summary = cell["workloads"][0]
    # The trajectory contract: wall time, rounds-to-convergence, and
    # message/byte counts per workload.
    assert set(summary["wall_time_s"]) == {"mean", "min", "max"}
    assert "mean" in summary["rounds_to_converge"]
    assert summary["messages"] > 0
    assert summary["bytes"] > 0
    assert summary["peak_view_size"] > 0
    assert len(summary["digests"]) == 2
    assert cell["totals"]["messages"] == summary["messages"]


def test_format_bench_renders_every_workload_row():
    report = _tiny_report()
    table = format_bench(report)
    assert "ring-32" in table
    assert "wall s (mean)" in table
    assert "scale=ci" in table


def test_write_bench_writes_json_and_table(tmp_path):
    report = _tiny_report()
    json_path = tmp_path / "deep" / "BENCH_gossip.json"
    written = write_bench(
        report,
        json_path=str(json_path),
        results_dir=str(tmp_path / "results"),
    )
    assert str(json_path) in written
    payload = json.loads(json_path.read_text(encoding="utf-8"))
    assert payload["suite"] == "gossip"
    table = (tmp_path / "results" / "bench_gossip.txt").read_text(encoding="utf-8")
    assert "ring-32" in table


def test_run_bench_groups_seeds_per_workload(monkeypatch):
    """End-to-end over a stubbed 2-cell matrix: grouping, seed derivation,
    and summary assembly — without paying for the real matrix."""
    import repro.perf.bench as bench_module

    tiny = (Workload("ring-24", "ring", 24), Workload("clique-12", "clique", 12))
    monkeypatch.setattr(bench_module, "workload_matrix", lambda scale: tiny)
    report = run_bench(scale="ci", seeds=2, parallel=1)
    assert [s.workload.name for s in report.summaries] == ["ring-24", "clique-12"]
    for summary in report.summaries:
        assert len(summary.seeds) == 2
        assert len(set(summary.seeds)) == 2
        assert len(summary.results) == 2
        assert all(wall >= 0 for wall in summary.wall_times)
        names = {record["workload"] for record in summary.results}
        assert names == {summary.workload.name}


def test_seeds_per_scale_presets():
    assert SEEDS_PER_SCALE["ci"] < SEEDS_PER_SCALE["full"]


def test_instrumented_pass_verifies_digests_with_and_without_flow(monkeypatch):
    """obs=True re-runs each cell bare, instrumented, and provenance-traced;
    all three must reproduce the first pass's digest, and the section must
    carry both overhead fractions for the trajectory."""
    import repro.perf.bench as bench_module

    tiny = (Workload("ring-24", "ring", 24),)
    monkeypatch.setattr(bench_module, "workload_matrix", lambda scale: tiny)
    original = bench_module._instrumented_pass
    monkeypatch.setattr(
        bench_module,
        "_instrumented_pass",
        lambda tasks, outcomes: original(tasks, outcomes, repeats=1),
    )
    report = run_bench(scale="ci", seeds=2, parallel=1, obs=True)
    obs = report.obs
    assert obs["digests_identical"], obs["digest_mismatches"]
    assert obs["cells"] == 2
    assert obs["flow_deliveries"] > 0
    assert obs["counter_increments"] > 0
    for key in ("overhead_fraction", "flow_overhead_fraction"):
        assert isinstance(obs[key], float)
    # The traced collector observed real flow: deliveries imply latency data.
    assert report.obs_collector is not None


def test_committed_trajectory_gates_instrumentation_overhead():
    """The checked-in BENCH_gossip.json is the gate: zero interference
    (digests identical across bare/instrumented/traced runs) and counter
    hot-path overhead below the 6.5 % recorded before pre-resolved keys."""
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_gossip.json"
    obs = json.loads(path.read_text(encoding="utf-8"))["obs"]
    assert obs["digests_identical"] is True
    assert obs["overhead_fraction"] < 0.065
    # Provenance tracing is opt-in and costs real work; the gate only pins
    # that the cost was measured and stayed within an order of magnitude.
    assert 0.0 <= obs["flow_overhead_fraction"] < 1.0
    assert obs["flow_deliveries"] > 0
