"""Differential twins: :class:`ColumnarView` vs :class:`PartialView`.

The columnar store's contract is *observable identity* with the boxed view —
including iteration order, because order decides RNG draws (``random``,
``sample``, ``drop_random``), overflow-eviction tie-breaks, and replace
semantics. Extending the lazy-vs-eager twin pattern of
tests/gossip/test_views_properties.py: one view of each representation is
driven through the same random operation sequence and every observable is
compared exactly, order included.
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.gossip.descriptors import Descriptor  # noqa: E402
from repro.gossip.selection import Proximity  # noqa: E402
from repro.gossip.views import PartialView  # noqa: E402
from repro.perf.cache import DistanceCache  # noqa: E402
from repro.scale.columnar import ColumnarView  # noqa: E402

# Small id/age spaces so sequences collide (same id at several ages); the
# profile rides along so closest/closest_to rank on real payloads.
node_ids = st.integers(min_value=0, max_value=15)
ages = st.integers(min_value=0, max_value=8)
descriptors = st.builds(
    Descriptor, node_id=node_ids, age=ages, profile=st.integers(0, 15)
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

# One step of a view's life. RNG-driven ops carry their own seed so both
# twins draw from identically-seeded generators.
operations = st.one_of(
    st.tuples(st.just("insert"), descriptors),
    st.tuples(st.just("remove"), node_ids),
    st.tuples(st.just("purge"), node_ids),
    st.tuples(st.just("age"), st.just(None)),
    st.tuples(st.just("merge"), st.lists(descriptors, max_size=6)),
    st.tuples(st.just("replace"), st.lists(descriptors, max_size=6)),
    st.tuples(st.just("drop_oldest"), st.integers(min_value=0, max_value=3)),
    st.tuples(st.just("discard_old"), st.integers(min_value=0, max_value=8)),
    st.tuples(st.just("truncate_closest"), st.integers(min_value=0, max_value=6)),
    st.tuples(
        st.just("drop_random"),
        st.tuples(st.integers(min_value=0, max_value=3), seeds),
    ),
)


def apply(view: PartialView, op: str, payload) -> object:
    """Apply one op; return whatever the op observed (compared by the twin)."""
    if op == "insert":
        return view.insert(payload)
    if op == "remove":
        view.remove(payload)
    elif op == "purge":
        view.purge(payload)
    elif op == "age":
        view.increase_age()
    elif op == "merge":
        return view.merge(payload)
    elif op == "replace":
        view.replace(payload)
    elif op == "drop_oldest":
        view.drop_oldest(payload)
    elif op == "discard_old":
        view.discard_where(lambda d: d.age > payload)
    elif op == "truncate_closest":
        view.truncate_closest(payload, lambda d: abs((d.profile or 0) - 5))
    elif op == "drop_random":
        count, seed = payload
        view.drop_random(random.Random(seed), count)
    return None


def snapshot(view: PartialView):
    """Every order-sensitive observable, in observation order."""
    return (
        [(d.node_id, d.age, d.profile) for d in view.descriptors()],
        view.ids(),
        sorted(view.id_set()),
        len(view),
        view.is_full(),
        [(d.node_id, d.age) for d in view],
        view.oldest(),
        view.youngest(),
        [view.is_purged(node_id) for node_id in range(16)],
    )


def make_twins(capacity: int):
    return (
        PartialView(capacity, tombstone_ttl=4),
        ColumnarView(capacity, tombstone_ttl=4),
    )


@given(
    capacity=st.integers(min_value=1, max_value=6),
    ops=st.lists(operations, max_size=40),
)
@settings(max_examples=200, deadline=None)
def test_columnar_matches_object_view_step_for_step(capacity, ops):
    obj, col = make_twins(capacity)
    for op, payload in ops:
        assert apply(obj, op, payload) == apply(col, op, payload), op
        assert snapshot(obj) == snapshot(col), op


@given(
    capacity=st.integers(min_value=1, max_value=6),
    ops=st.lists(operations, max_size=30),
    seed=seeds,
    k=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=200, deadline=None)
def test_rng_draws_are_identical(capacity, ops, seed, k):
    """random/sample consume the twins' RNGs identically — same picks AND
    the same number of underlying draws (checked by continuing to draw)."""
    obj, col = make_twins(capacity)
    for op, payload in ops:
        apply(obj, op, payload)
        apply(col, op, payload)
    rng_obj, rng_col = random.Random(seed), random.Random(seed)
    assert obj.random(rng_obj) == col.random(rng_col)
    assert obj.sample(rng_obj, k) == col.sample(rng_col, k)
    assert rng_obj.random() == rng_col.random(), "rng state diverged"


@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(operations, max_size=30),
    k=st.integers(min_value=0, max_value=10),
    reference=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=200, deadline=None)
def test_ranking_is_identical(capacity, ops, k, reference):
    """closest and the batch closest_to agree across representations (and
    with each other) for both a plain metric and a memoizing cache."""
    obj, col = make_twins(capacity)
    for op, payload in ops:
        apply(obj, op, payload)
        apply(col, op, payload)
    key = lambda d: abs((d.profile or 0) - reference)  # noqa: E731 — ties on purpose
    assert obj.closest(k, key) == col.closest(k, key)
    proximity = Proximity(lambda a, b: abs((a or 0) - (b or 0)))
    cache = DistanceCache(proximity, reference)
    expected = obj.closest(k, lambda d: cache.to(d.profile))
    assert obj.closest_to(k, cache) == expected
    assert col.closest_to(k, cache) == expected


@given(ops=st.lists(operations, max_size=25))
@settings(max_examples=100, deadline=None)
def test_columnar_never_allocates_past_capacity(ops):
    """The slot columns are the whole store: free + occupied always
    partitions the preallocated capacity exactly."""
    col = ColumnarView(4, tombstone_ttl=4)
    for op, payload in ops:
        apply(col, op, payload)
        occupied = sorted(col._slot_of.values())
        assert len(occupied) + len(col._free) == 4
        assert sorted(occupied + col._free) == [0, 1, 2, 3]
