"""Tests for controls and observers."""

from __future__ import annotations

from repro.obs.observers import GraphObserver, SeriesObserver
from repro.sim.controls import CallbackControl, ScheduledControl
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.protocol import Protocol
from repro.sim.rng import RandomStreams


class FixedNeighbors(Protocol):
    def __init__(self, neighbors):
        self._neighbors = list(neighbors)

    def step(self, ctx):
        pass

    def neighbors(self):
        return list(self._neighbors)


class TestCallbackControl:
    def test_invoked_each_round(self):
        calls = []
        net = Network()
        net.create_node()
        control = CallbackControl(lambda network, rnd: calls.append(rnd))
        Engine(net, streams=RandomStreams(1), controls=[control]).run(3)
        assert calls == [0, 1, 2]


class TestScheduledControl:
    def test_fires_exactly_once_at_round(self):
        calls = []
        net = Network()
        net.create_node()
        control = ScheduledControl(2, lambda network, rnd: calls.append(rnd))
        Engine(net, streams=RandomStreams(1), controls=[control]).run(5)
        assert calls == [2]
        assert control.fired

    def test_fires_late_if_round_already_passed(self):
        calls = []
        net = Network()
        net.create_node()
        control = ScheduledControl(0, lambda network, rnd: calls.append(rnd))
        engine = Engine(net, streams=RandomStreams(1), controls=[])
        engine.run(2)
        engine.add_control(control)
        engine.run(1)
        assert calls == [2]


class TestSeriesObserver:
    def test_records_one_sample_per_round(self):
        net = Network()
        net.create_nodes(3)
        observer = SeriesObserver("alive", lambda network, rnd: network.alive_count())
        Engine(net, streams=RandomStreams(1), observers=[observer]).run(4)
        assert observer.samples == [3, 3, 3, 3]

    def test_never_requests_stop(self):
        observer = SeriesObserver("x", lambda network, rnd: 0.0)
        assert observer.observe(Network(), 0) is False


class TestGraphObserver:
    def test_snapshots_layer_adjacency(self):
        net = Network()
        a = net.create_node()
        b = net.create_node()
        a.attach("overlay", FixedNeighbors([b.node_id]))
        b.attach("overlay", FixedNeighbors([a.node_id]))
        observer = GraphObserver("overlay")
        observer.observe(net, 0)
        assert observer.current == {0: [1], 1: [0]}

    def test_skips_dead_and_unequipped_nodes(self):
        net = Network()
        a = net.create_node()
        b = net.create_node()
        net.create_node()  # no protocol
        a.attach("overlay", FixedNeighbors([1]))
        b.attach("overlay", FixedNeighbors([0]))
        net.kill(b.node_id)
        observer = GraphObserver("overlay")
        observer.observe(net, 0)
        assert observer.current == {0: [1]}

    def test_history_kept_on_request(self):
        net = Network()
        net.create_node().attach("overlay", FixedNeighbors([]))
        observer = GraphObserver("overlay", keep_history=True)
        observer.observe(net, 0)
        observer.observe(net, 1)
        assert len(observer.history) == 2
