"""Tests for simulated nodes and protocol stacks."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.node import Node
from repro.sim.protocol import Protocol


class StubProtocol(Protocol):
    def __init__(self, tag=""):
        self.tag = tag
        self.steps = 0

    def step(self, ctx):
        self.steps += 1

    def neighbors(self):
        return [1, 2]


class TestNodeLiveness:
    def test_starts_alive(self):
        assert Node(0).alive

    def test_kill_and_revive(self):
        node = Node(0)
        node.kill()
        assert not node.alive
        node.revive()
        assert node.alive

    def test_kill_preserves_state(self):
        node = Node(0)
        node.attach("p", StubProtocol("keep"))
        node.kill()
        assert node.protocol("p").tag == "keep"


class TestProtocolStack:
    def test_attach_and_get(self):
        node = Node(3)
        protocol = StubProtocol()
        assert node.attach("ps", protocol) is protocol
        assert node.protocol("ps") is protocol

    def test_attach_duplicate_raises(self):
        node = Node(0)
        node.attach("ps", StubProtocol())
        with pytest.raises(SimulationError):
            node.attach("ps", StubProtocol())

    def test_missing_protocol_raises_with_stack_info(self):
        node = Node(0)
        node.attach("only", StubProtocol())
        with pytest.raises(SimulationError, match="only"):
            node.protocol("absent")

    def test_has_protocol(self):
        node = Node(0)
        assert not node.has_protocol("x")
        node.attach("x", StubProtocol())
        assert node.has_protocol("x")

    def test_stack_preserves_attach_order(self):
        node = Node(0)
        for name in ("c", "a", "b"):
            node.attach(name, StubProtocol(name))
        assert [name for name, _ in node.stack()] == ["c", "a", "b"]
        assert node.layer_names() == ["c", "a", "b"]

    def test_replace_keeps_position(self):
        node = Node(0)
        node.attach("a", StubProtocol("old_a"))
        node.attach("b", StubProtocol("b"))
        replacement = StubProtocol("new_a")
        node.replace("a", replacement)
        assert node.protocol("a") is replacement
        assert [name for name, _ in node.stack()] == ["a", "b"]

    def test_replace_missing_raises(self):
        with pytest.raises(SimulationError):
            Node(0).replace("nope", StubProtocol())

    def test_default_protocol_hooks(self):
        """Protocol base class must provide safe no-op hooks."""
        protocol = StubProtocol()
        protocol.forget(5)
        protocol.on_join(None)
        assert list(Protocol.neighbors(protocol)) == []

    def test_attributes_dict(self):
        node = Node(0)
        node.attributes["role"] = "anything"
        assert node.attributes["role"] == "anything"
