"""Tests for byte-accounted transport."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import TransportCosts
from repro.sim.transport import Transport


class TestCosts:
    def test_message_bytes_formula(self):
        costs = TransportCosts(header_bytes=10, descriptor_bytes=5)
        assert costs.message_bytes(0) == 10
        assert costs.message_bytes(4) == 30

    def test_negative_descriptor_count_raises(self):
        with pytest.raises(ConfigurationError):
            TransportCosts().message_bytes(-1)

    def test_negative_costs_raise(self):
        with pytest.raises(ConfigurationError):
            TransportCosts(header_bytes=-1)


class TestAccounting:
    def test_record_message_returns_bytes(self):
        transport = Transport(TransportCosts(header_bytes=16, descriptor_bytes=24))
        assert transport.record_message("layer", 2) == 16 + 48

    def test_record_exchange_counts_both_directions(self):
        transport = Transport(TransportCosts(header_bytes=10, descriptor_bytes=1))
        total = transport.record_exchange("l", 3, 5)
        assert total == (10 + 3) + (10 + 5)
        assert transport.total_messages("l") == 2

    def test_buckets_by_round(self):
        transport = Transport(TransportCosts(header_bytes=1, descriptor_bytes=0))
        transport.begin_round(0)
        transport.record_message("a", 0)
        transport.begin_round(1)
        transport.record_message("a", 0)
        transport.record_message("a", 0)
        assert transport.bytes_for("a", 0) == 1
        assert transport.bytes_for("a", 1) == 2
        assert transport.messages_for("a", 1) == 2

    def test_buckets_by_layer(self):
        transport = Transport()
        transport.record_message("a", 1)
        transport.record_message("b", 1)
        assert transport.layers() == ["a", "b"]
        assert transport.total_bytes("a") == transport.total_bytes("b")
        assert transport.total_bytes() == transport.total_bytes("a") * 2

    def test_bytes_series_pads_missing_rounds(self):
        transport = Transport(TransportCosts(header_bytes=5, descriptor_bytes=0))
        transport.begin_round(2)
        transport.record_message("x", 0)
        assert transport.bytes_series("x", 4) == [0, 0, 5, 0]

    def test_unknown_layer_is_zero(self):
        transport = Transport()
        assert transport.bytes_for("ghost", 0) == 0
        assert transport.bytes_series("ghost", 3) == [0, 0, 0]

    def test_reset(self):
        transport = Transport()
        transport.record_message("a", 1)
        transport.reset()
        assert transport.total_bytes() == 0
        assert transport.total_messages() == 0
