"""Tests for the round scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.obs.instrument import Instrument
from repro.sim.controls import Control
from repro.sim.engine import Engine, RoundContext
from repro.sim.network import Network
from repro.sim.protocol import Protocol
from repro.sim.rng import RandomStreams


class CountingProtocol(Protocol):
    def __init__(self):
        self.steps = 0
        self.seen_layers = []

    def step(self, ctx: RoundContext):
        self.steps += 1
        self.seen_layers.append(ctx.layer)


def build(n=4, layers=("a", "b")):
    net = Network()
    protocols = []
    for node in net.create_nodes(n):
        per_node = {}
        for layer in layers:
            per_node[layer] = node.attach(layer, CountingProtocol())
        protocols.append(per_node)
    return net, protocols


class TestRoundExecution:
    def test_every_live_node_steps_every_layer(self):
        net, protocols = build(n=3)
        engine = Engine(net, streams=RandomStreams(1))
        engine.run(2)
        for per_node in protocols:
            assert per_node["a"].steps == 2
            assert per_node["b"].steps == 2

    def test_layer_context_set_per_protocol(self):
        net, protocols = build(n=1)
        Engine(net, streams=RandomStreams(1)).run(1)
        assert protocols[0]["a"].seen_layers == ["a"]
        assert protocols[0]["b"].seen_layers == ["b"]

    def test_dead_nodes_do_not_step(self):
        net, protocols = build(n=2)
        net.kill(0)
        Engine(net, streams=RandomStreams(1)).run(3)
        assert protocols[0]["a"].steps == 0
        assert protocols[1]["a"].steps == 3

    def test_round_counter_advances(self):
        net, _ = build()
        engine = Engine(net, streams=RandomStreams(1))
        engine.run(5)
        assert engine.round == 5

    def test_negative_budget_raises(self):
        net, _ = build()
        with pytest.raises(SimulationError):
            Engine(net, streams=RandomStreams(1)).run(-1)

    def test_run_returns_rounds_executed(self):
        net, _ = build()
        assert Engine(net, streams=RandomStreams(1)).run(4) == 4

    def test_node_killed_mid_round_skips_remaining_step(self):
        """A node killed by an earlier node's step must not execute."""
        net = Network()
        nodes = net.create_nodes(2)

        class Killer(Protocol):
            def step(self, ctx):
                for other in list(ctx.network.alive_ids()):
                    if other != ctx.node.node_id:
                        ctx.network.kill(other)

        counters = {}
        for node in nodes:
            node.attach("kill", Killer())
            counters[node.node_id] = node.attach("count", CountingProtocol())
        Engine(net, streams=RandomStreams(1)).run(1)
        # Exactly one node ran (whichever was scheduled first); the other
        # was killed before its turn.
        steps = sorted(c.steps for c in counters.values())
        assert steps == [0, 1]


class TestControlsAndObservers:
    def test_controls_run_before_steps(self):
        net, protocols = build(n=1)
        order = []

        class Before(Control):
            def before_round(self, network, round_index):
                order.append(("control", protocols[0]["a"].steps))

        engine = Engine(net, streams=RandomStreams(1), controls=[Before()])
        engine.run(1)
        assert order == [("control", 0)]

    def test_after_round_hook_runs(self):
        net, _ = build(n=1)
        calls = []

        class After(Control):
            def after_round(self, network, round_index):
                calls.append(round_index)

        Engine(net, streams=RandomStreams(1), controls=[After()]).run(3)
        assert calls == [0, 1, 2]

    def test_observer_stop_request_halts_run(self):
        net, _ = build(n=1)

        class StopAtOne(Instrument):
            def observe(self, network, round_index):
                return round_index >= 1

        engine = Engine(net, streams=RandomStreams(1), observers=[StopAtOne()])
        assert engine.run(10) == 2

    def test_stop_when_predicate(self):
        net, _ = build(n=1)
        engine = Engine(net, streams=RandomStreams(1))
        executed = engine.run(10, stop_when=lambda network, rnd: rnd >= 2)
        assert executed == 3

    def test_add_control_and_observer(self):
        net, _ = build(n=1)
        engine = Engine(net, streams=RandomStreams(1))
        engine.add_control(Control())
        engine.add_observer(Instrument())
        assert len(engine.controls) == 1
        assert len(engine.observers) == 1


class TestDeterminism:
    def test_same_seed_same_order(self):
        def run_once(seed):
            net = Network()
            order = []

            class Recorder(Protocol):
                def step(self, ctx):
                    order.append(ctx.node.node_id)

            for node in net.create_nodes(6):
                node.attach("r", Recorder())
            Engine(net, streams=RandomStreams(seed)).run(2)
            return order

        assert run_once(5) == run_once(5)
        assert run_once(5) != run_once(6)  # overwhelmingly likely

    def test_context_rng_is_layer_and_node_scoped(self):
        net = Network()
        node = net.create_node()
        streams = RandomStreams(3)
        ctx = RoundContext(
            node=node, network=net, transport=None, streams=streams, round=0,
            layer="alpha",
        )
        assert ctx.rng() is streams.stream("alpha", node.node_id)
