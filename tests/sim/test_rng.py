"""Tests for the deterministic random-stream registry."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    @given(st.integers(), st.text(max_size=20), st.integers())
    def test_in_64_bit_range(self, master, name, extra):
        assert 0 <= derive_seed(master, name, extra) < 2**64


class TestRandomStreams:
    def test_same_names_same_stream_object(self):
        streams = RandomStreams(7)
        assert streams.stream("x", 1) is streams.stream("x", 1)

    def test_different_names_different_sequences(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        first = [RandomStreams(3).stream("p", 0).random() for _ in range(3)]
        second = [RandomStreams(3).stream("p", 0).random() for _ in range(3)]
        assert first == second

    def test_unrelated_stream_isolation(self):
        """Consuming one stream must not perturb another."""
        streams_a = RandomStreams(5)
        streams_a.stream("noise").random()
        value_after_noise = streams_a.stream("signal").random()
        value_clean = RandomStreams(5).stream("signal").random()
        assert value_after_noise == value_clean

    def test_fork_is_independent(self):
        streams = RandomStreams(9)
        fork = streams.fork("child")
        assert fork.master_seed != streams.master_seed
        assert (
            fork.stream("x").random() != streams.stream("x").random()
        )

    def test_fork_deterministic(self):
        assert (
            RandomStreams(9).fork("c").master_seed
            == RandomStreams(9).fork("c").master_seed
        )
