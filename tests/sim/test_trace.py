"""Tests for structured event tracing."""

from __future__ import annotations

import json

from repro.core import Runtime
from repro.dsl import TopologyBuilder
from repro.obs.trace import TraceEvent, Tracer, attach_tracer


def small_deployment(seed=81):
    builder = TopologyBuilder("Traced")
    builder.component("ring", "ring", size=12).port("gate", "lowest_id")
    builder.component("cell", "clique", size=6).port("gate", "lowest_id")
    builder.link(("ring", "gate"), ("cell", "gate"))
    return Runtime(builder.nodes(18).build(), seed=seed).deploy()


class TestTracer:
    def test_emit_and_query(self):
        tracer = Tracer()
        tracer.emit("custom", value=1)
        tracer.emit("other")
        tracer.emit("custom", value=2)
        assert len(tracer) == 3
        assert [e.details["value"] for e in tracer.of_kind("custom")] == [1, 2]

    def test_round_source(self):
        tracer = Tracer()
        clock = {"round": 7}
        tracer.bind_round_source(lambda: clock["round"])
        event = tracer.emit("tick")
        assert event.round == 7

    def test_since(self):
        tracer = Tracer()
        clock = {"round": 0}
        tracer.bind_round_source(lambda: clock["round"])
        tracer.emit("early")
        clock["round"] = 5
        tracer.emit("late")
        assert [e.kind for e in tracer.since(5)] == ["late"]

    def test_timeline_format(self):
        tracer = Tracer()
        tracer.emit("node_crash", node=3)
        assert "node_crash node=3" in tracer.timeline()

    def test_json_round_trip(self):
        tracer = Tracer()
        tracer.emit("deploy", nodes=18)
        parsed = json.loads(tracer.to_json())
        assert parsed == [{"round": 0, "kind": "deploy", "details": {"nodes": 18}}]
        assert TraceEvent.from_dict(parsed[0]) == tracer.events[0]

    def test_details_cannot_shadow_round_or_kind(self):
        # Regression: details named "round"/"kind" used to overwrite the
        # event's own fields in the flat serialization.
        event = TraceEvent(0, "custom", {"round": "shadow", "kind": "shadow"})
        data = event.to_dict()
        assert data["round"] == 0 and data["kind"] == "custom"
        assert data["details"] == {"round": "shadow", "kind": "shadow"}
        assert TraceEvent.from_dict(data) == event

    def test_from_dict_reads_legacy_flat_layout(self):
        legacy = {"round": 4, "kind": "deploy", "nodes": 18}
        event = TraceEvent.from_dict(legacy)
        assert event == TraceEvent(4, "deploy", {"nodes": 18})

    def test_event_str(self):
        assert str(TraceEvent(3, "x")) == "[   3] x"


class TestAttachedTracer:
    def test_deploy_event_emitted(self):
        deployment = small_deployment()
        tracer = attach_tracer(deployment)
        deploys = tracer.of_kind("deploy")
        assert len(deploys) == 1
        assert deploys[0].details["assembly"] == "Traced"
        assert deploys[0].details["nodes"] == 18

    def test_layer_convergence_events(self):
        deployment = small_deployment()
        tracer = attach_tracer(deployment)
        deployment.run_until_converged(80)
        converged = tracer.of_kind("layer_converged")
        assert {event.details["layer"] for event in converged} == {
            "core",
            "uo1",
            "uo2",
            "port_selection",
            "port_connection",
        }
        for event in converged:
            assert event.details["at"] >= 1

    def test_crash_and_revive_events(self):
        deployment = small_deployment()
        tracer = attach_tracer(deployment)
        deployment.run(2)
        deployment.network.kill(5)
        deployment.run(1)
        deployment.network.revive(5)
        deployment.run(1)
        assert [e.details["node"] for e in tracer.of_kind("node_crash")] == [5]
        assert [e.details["node"] for e in tracer.of_kind("node_up")] == [5]

    def test_join_events(self):
        deployment = small_deployment()
        tracer = attach_tracer(deployment)
        deployment.run(1)
        node = deployment.network.create_node()
        deployment.provisioner()(deployment.network, node)
        deployment.run(1)
        ups = tracer.of_kind("node_up")
        assert node.node_id in [event.details["node"] for event in ups]
