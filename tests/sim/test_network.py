"""Tests for the node population (churn, lookup, random draws)."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.sim.network import Network


class TestPopulation:
    def test_create_assigns_monotonic_ids(self):
        net = Network()
        nodes = net.create_nodes(5)
        assert [n.node_id for n in nodes] == [0, 1, 2, 3, 4]

    def test_ids_never_reused_after_removal(self):
        net = Network()
        net.create_nodes(3)
        net.remove_node(2)
        fresh = net.create_node()
        assert fresh.node_id == 3

    def test_negative_create_raises(self):
        with pytest.raises(SimulationError):
            Network().create_nodes(-1)

    def test_remove_unknown_raises(self):
        with pytest.raises(SimulationError):
            Network().remove_node(0)

    def test_len_and_size(self):
        net = Network()
        net.create_nodes(4)
        assert len(net) == net.size() == 4


class TestLiveness:
    def test_kill_marks_dead(self):
        net = Network()
        net.create_nodes(3)
        net.kill(1)
        assert not net.is_alive(1)
        assert net.is_alive(0)
        assert net.alive_count() == 2

    def test_revive(self):
        net = Network()
        net.create_nodes(2)
        net.kill(0)
        net.revive(0)
        assert net.is_alive(0)

    def test_is_alive_unknown_is_false(self):
        assert not Network().is_alive(99)

    def test_alive_ids_sorted_and_cached(self):
        net = Network()
        net.create_nodes(6)
        net.kill(3)
        assert net.alive_ids() == [0, 1, 2, 4, 5]
        # Cache must invalidate on the next change.
        net.kill(0)
        assert net.alive_ids() == [1, 2, 4, 5]
        net.revive(3)
        assert 3 in net.alive_ids()

    def test_alive_nodes_iteration(self):
        net = Network()
        net.create_nodes(4)
        net.kill(2)
        assert [n.node_id for n in net.alive_nodes()] == [0, 1, 3]


class TestRandomAlive:
    def test_uniform_over_alive(self):
        net = Network()
        net.create_nodes(10)
        net.kill(0)
        rng = random.Random(1)
        seen = {net.random_alive(rng).node_id for _ in range(200)}
        assert 0 not in seen
        assert seen <= set(range(1, 10))
        assert len(seen) == 9

    def test_exclude(self):
        net = Network()
        net.create_nodes(3)
        rng = random.Random(2)
        for _ in range(50):
            assert net.random_alive(rng, exclude=1).node_id != 1

    def test_none_when_empty(self):
        assert Network().random_alive(random.Random(0)) is None

    def test_none_when_only_excluded_remains(self):
        net = Network()
        net.create_nodes(2)
        net.kill(0)
        assert net.random_alive(random.Random(0), exclude=1) is None

    def test_count_where(self):
        net = Network()
        net.create_nodes(5)
        assert net.count_where(lambda n: n.node_id % 2 == 0) == 3

    def test_bounded_retry_falls_back_deterministically(self):
        """An adversarial rng that always draws the excluded id must not
        loop forever: after the bounded retries the draw is made over the
        explicitly filtered candidate list."""

        class AlwaysFirst:
            def __init__(self):
                self.calls = 0

            def choice(self, seq):
                self.calls += 1
                return seq[0]

        net = Network()
        net.create_nodes(3)
        rng = AlwaysFirst()
        node = net.random_alive(rng, exclude=0)
        assert node is not None and node.node_id == 1
        # 8 rejected draws plus the single fallback draw.
        assert rng.calls == 9
