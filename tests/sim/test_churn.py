"""Tests for churn and failure injection."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.churn import CatastrophicFailure, RandomChurn
from repro.sim.network import Network


class TestRandomChurnValidation:
    def test_bad_crash_rate(self):
        with pytest.raises(ConfigurationError):
            RandomChurn(random.Random(0), crash_rate=1.0)
        with pytest.raises(ConfigurationError):
            RandomChurn(random.Random(0), crash_rate=-0.1)

    def test_joins_require_provisioner(self):
        with pytest.raises(ConfigurationError):
            RandomChurn(random.Random(0), join_count=1)

    def test_negative_joins(self):
        with pytest.raises(ConfigurationError):
            RandomChurn(random.Random(0), join_count=-1)


class TestRandomChurnBehavior:
    def test_crashes_roughly_at_rate(self):
        net = Network()
        net.create_nodes(200)
        churn = RandomChurn(random.Random(1), crash_rate=0.1, min_population=10)
        churn.before_round(net, 0)
        # ~20 expected; allow generous slack for a single draw.
        assert 5 <= churn.crashes_last_round <= 45
        assert churn.crashes_total == churn.crashes_last_round
        assert net.alive_count() == 200 - churn.crashes_last_round

    def test_min_population_floor(self):
        net = Network()
        net.create_nodes(12)
        churn = RandomChurn(random.Random(1), crash_rate=0.99, min_population=8)
        for rnd in range(10):
            churn.before_round(net, rnd)
        assert net.alive_count() >= 8

    def test_joins_are_provisioned(self):
        net = Network()
        net.create_nodes(4)
        provisioned = []
        churn = RandomChurn(
            random.Random(1),
            join_count=2,
            provisioner=lambda network, node: provisioned.append(node.node_id),
        )
        churn.before_round(net, 0)
        assert len(provisioned) == 2
        assert net.size() == 6
        assert churn.joins_last_round == 2
        churn.before_round(net, 1)
        assert churn.joins_last_round == 2
        assert churn.joins_total == 4

    def test_zero_rates_are_noop(self):
        net = Network()
        net.create_nodes(5)
        RandomChurn(random.Random(1)).before_round(net, 0)
        assert net.alive_count() == 5


class TestCatastrophicFailure:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CatastrophicFailure(random.Random(0), at_round=0, fraction=0.0)
        with pytest.raises(ConfigurationError):
            CatastrophicFailure(random.Random(0), at_round=0, fraction=1.0)
        with pytest.raises(ConfigurationError):
            CatastrophicFailure(random.Random(0), at_round=-1, fraction=0.5)

    def test_kills_exact_fraction_once(self):
        net = Network()
        net.create_nodes(40)
        control = CatastrophicFailure(random.Random(2), at_round=3, fraction=0.5)
        for rnd in range(3):
            control.before_round(net, rnd)
            assert net.alive_count() == 40
        control.before_round(net, 3)
        assert net.alive_count() == 20
        assert len(control.victims) == 20
        # Firing again must do nothing.
        control.before_round(net, 4)
        assert net.alive_count() == 20

    def test_min_population_caps_blast_radius(self):
        net = Network()
        net.create_nodes(20)
        control = CatastrophicFailure(
            random.Random(2), at_round=0, fraction=0.9, min_population=12
        )
        control.before_round(net, 0)
        assert net.alive_count() == 12
        assert len(control.victims) == 8

    def test_min_population_validation(self):
        with pytest.raises(ConfigurationError):
            CatastrophicFailure(
                random.Random(0), at_round=0, fraction=0.5, min_population=-1
            )
