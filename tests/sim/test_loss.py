"""Tests for the message-loss model."""

from __future__ import annotations

import pytest

from repro.core import Runtime, RuntimeConfig
from repro.dsl import TopologyBuilder
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Engine, RoundContext
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from tests.gossip.helpers import GossipWorld


class TestExchangeOk:
    def _context(self, loss_rate, seed=1):
        network = Network()
        node = network.create_node()
        return RoundContext(
            node=node,
            network=network,
            transport=None,
            streams=RandomStreams(seed),
            round=0,
            layer="layer",
            loss_rate=loss_rate,
        )

    def test_zero_loss_always_ok(self):
        ctx = self._context(0.0)
        assert all(ctx.exchange_ok() for _ in range(100))

    def test_loss_rate_respected_statistically(self):
        ctx = self._context(0.3)
        drops = sum(1 for _ in range(2000) if not ctx.exchange_ok())
        assert 450 <= drops <= 750  # 600 expected

    def test_deterministic_per_seed(self):
        first = [self._context(0.5, seed=7).exchange_ok() for _ in range(20)]
        second = [self._context(0.5, seed=7).exchange_ok() for _ in range(20)]
        assert first == second

    def test_engine_validates_loss_rate(self):
        network = Network()
        with pytest.raises(SimulationError):
            Engine(network, loss_rate=1.0)
        with pytest.raises(SimulationError):
            Engine(network, loss_rate=-0.1)


class TestLossyGossip:
    def test_peer_sampling_still_mixes_under_loss(self):
        world = GossipWorld(30, seed=3)
        world.engine.loss_rate = 0.3
        world.run(12)
        # Views remain populated and the traffic volume is visibly reduced.
        sizes = [len(world.ps(i).view) for i in range(30)]
        assert min(sizes) >= world.params.view_size - 2

    def test_lost_rounds_send_no_messages(self):
        lossless = GossipWorld(20, seed=5)
        lossless.run(10)
        lossy = GossipWorld(20, seed=5)
        lossy.engine.loss_rate = 0.5
        lossy.run(10)
        assert (
            lossy.transport.total_messages("peer_sampling")
            < lossless.transport.total_messages("peer_sampling")
        )


class TestLossyRuntime:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(loss_rate=1.5)

    def test_full_runtime_converges_under_loss(self):
        builder = TopologyBuilder("Lossy")
        builder.component("ring", "ring", size=24).port("gate", "lowest_id")
        builder.component("cell", "clique", size=8).port("gate", "lowest_id")
        builder.link(("ring", "gate"), ("cell", "gate"))
        assembly = builder.nodes(32).build()
        config = RuntimeConfig(loss_rate=0.3)
        deployment = Runtime(assembly, config=config, seed=71).deploy()
        report = deployment.run_until_converged(120)
        assert report.converged, report.rounds

    def test_loss_slows_convergence(self):
        builder = TopologyBuilder("Slow")
        builder.component("ring", "ring", size=32)
        assembly = builder.nodes(32).build()
        fast = Runtime(assembly, seed=72).deploy()
        report_fast = fast.run_until_converged(120)
        slow = Runtime(
            assembly, config=RuntimeConfig(loss_rate=0.5), seed=72
        ).deploy()
        report_slow = slow.run_until_converged(120)
        assert report_fast.converged and report_slow.converged
        assert report_slow.slowest >= report_fast.slowest
