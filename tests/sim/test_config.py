"""Tests for configuration validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import GossipParams, SimulationConfig, TransportCosts


class TestGossipParams:
    def test_defaults_valid(self):
        params = GossipParams()
        assert params.view_size >= params.gossip_size - 1

    def test_view_size_minimum(self):
        with pytest.raises(ConfigurationError):
            GossipParams(view_size=0)

    def test_gossip_size_bounds(self):
        with pytest.raises(ConfigurationError):
            GossipParams(view_size=4, gossip_size=0)
        with pytest.raises(ConfigurationError):
            GossipParams(view_size=4, gossip_size=6)
        GossipParams(view_size=4, gossip_size=5, healer=0, swapper=0)  # C+1 allowed

    def test_negative_healer_swapper(self):
        with pytest.raises(ConfigurationError):
            GossipParams(healer=-1)
        with pytest.raises(ConfigurationError):
            GossipParams(swapper=-1)

    def test_healer_plus_swapper_bounded_by_view(self):
        with pytest.raises(ConfigurationError):
            GossipParams(view_size=4, gossip_size=2, healer=3, swapper=2)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GossipParams().view_size = 99  # type: ignore[misc]


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.max_rounds >= 1
        assert isinstance(config.gossip, GossipParams)
        assert isinstance(config.costs, TransportCosts)

    def test_max_rounds_minimum(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_rounds=0)
