"""Seed-determinism regression tests (tier-1).

The contract the whole perf subsystem leans on: a simulation's outcome is a
pure function of (configuration, seed). Running the same workload twice,
or fanning seeds out through the parallel multi-seed runner, must produce
byte-identical result digests per seed.
"""

from __future__ import annotations

from repro.experiments.harness import run_parallel_seeds
from repro.perf.digest import result_digest
from repro.perf.workloads import Workload, run_workload
from repro.sim.rng import derive_seed, spawn_seeds

#: Small, fast cells; two shapes with different metric structure.
WORKLOADS = (
    Workload("ring-32", "ring", 32),
    Workload("clique-16", "clique", 16),
)


def _run_task(task):
    """Module-level so it pickles into ProcessPoolExecutor workers."""
    workload, seed = task
    return run_workload(workload, seed).to_dict()


def test_same_workload_same_seed_is_byte_identical():
    for workload in WORKLOADS:
        first = run_workload(workload, seed=7).to_dict()
        second = run_workload(workload, seed=7).to_dict()
        assert first == second
        assert result_digest(first) == result_digest(second)


def test_different_seeds_take_different_trajectories():
    digests = {
        result_digest(run_workload(WORKLOADS[0], seed=seed).to_dict())
        for seed in (1, 2, 3)
    }
    assert len(digests) == 3


def test_parallel_runner_matches_serial_per_seed():
    """Fanning out across processes must not change a single byte: same
    tasks, same order, same digests, whether 1 or 4 workers run them."""
    tasks = [
        (workload, seed)
        for workload in WORKLOADS
        for seed in spawn_seeds(1, 2, "determinism")
    ]
    serial = run_parallel_seeds(_run_task, tasks, parallel=1)
    fanned = run_parallel_seeds(_run_task, tasks, parallel=4)
    assert [result_digest(r) for r in serial] == [result_digest(r) for r in fanned]
    assert serial == fanned


def test_spawn_seeds_is_deterministic_and_collision_free():
    first = spawn_seeds(1, 5, "bench", "ring-64")
    again = spawn_seeds(1, 5, "bench", "ring-64")
    assert first == again
    assert len(set(first)) == 5
    # Distinct names and distinct masters derive disjoint seed sets.
    other_name = spawn_seeds(1, 5, "bench", "grid-64")
    other_master = spawn_seeds(2, 5, "bench", "ring-64")
    assert not set(first) & set(other_name)
    assert not set(first) & set(other_master)


def test_spawn_seeds_matches_derive_seed_contract():
    seeds = spawn_seeds(3, 3, "suite", "cell")
    assert seeds == tuple(
        derive_seed(3, "spawn", "suite", "cell", index) for index in range(3)
    )
