"""Smoke tests for the per-figure experiment drivers (tiny scales).

The real reproductions live in ``benchmarks/``; these tests assert the
drivers' *structure* — row counts, series names, formatting — at scales
small enough for the unit-test budget.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablations import (
    core_flavor_comparison,
    heterogeneity_study,
    loss_tolerance_sweep,
    monolithic_comparison,
    random_feed_ablation,
    view_size_sweep,
)
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.harness import ALL_SERIES
from repro.experiments.reconfiguration import (
    format_reconfiguration,
    run_reconfiguration,
)
from repro.experiments.ring_of_rings import (
    format_ring_of_rings,
    run_ring_of_rings,
)


class TestFig2Driver:
    def test_rows_and_series(self):
        rows = run_fig2(node_counts=(80, 160), n_components=8, seeds=(1,), max_rounds=60)
        assert len(rows) == 2
        for row in rows:
            assert set(row.series) == set(ALL_SERIES)
        assert rows[0].n_nodes < rows[1].n_nodes

    def test_format(self):
        rows = run_fig2(node_counts=(80,), n_components=8, seeds=(1,), max_rounds=60)
        text = format_fig2(rows)
        assert "Figure 2" in text
        for series in ALL_SERIES:
            assert series in text


class TestFig3Driver:
    def test_rows_and_series(self):
        rows = run_fig3(
            component_counts=(2, 4), n_nodes=96, seeds=(1,), max_rounds=60
        )
        assert [row.n_components for row in rows] == [2, 4]
        for row in rows:
            assert set(row.series) == set(ALL_SERIES)

    def test_format(self):
        rows = run_fig3(component_counts=(2,), n_nodes=64, seeds=(1,), max_rounds=60)
        assert "Figure 3" in format_fig3(rows)


class TestFig4Driver:
    def test_series_lengths(self):
        result = run_fig4(n_nodes=96, n_components=6, rounds=8, seeds=(1,))
        assert len(result.baseline) == 8
        assert len(result.overhead) == 8
        assert all(value >= 0 for value in result.baseline)
        assert not any(math.isnan(value) for value in result.overhead)

    @pytest.mark.slow
    def test_bandwidth_plateaus(self):
        """Fig 4's qualitative shape: both series rise then flatten."""
        result = run_fig4(n_nodes=96, n_components=6, rounds=12, seeds=(1, 2))
        late_base = result.baseline[-3:]
        spread = max(late_base) - min(late_base)
        assert spread <= 0.2 * max(late_base)

    def test_format(self):
        result = run_fig4(n_nodes=64, n_components=4, rounds=4, seeds=(1,))
        text = format_fig4(result)
        assert "Figure 4" in text
        assert "Baseline" in text and "Overhead" in text


class TestRingOfRingsDriver:
    def test_series_present(self):
        result = run_ring_of_rings(n_rings=4, ring_size=8, seeds=(1,), max_rounds=60)
        assert set(result.series) == set(ALL_SERIES)
        text = format_ring_of_rings(result)
        assert "ring" in text.lower()


class TestReconfigurationDriver:
    def test_phases_reported(self):
        result = run_reconfiguration(n_nodes=64, seeds=(1,), max_rounds=80)
        assert result.initial.n == 1
        assert result.reconfigured.n == 1
        assert result.cold_start.n == 1
        text = format_reconfiguration(result)
        assert "reconfigure" in text


class TestAblationDrivers:
    def test_view_size_sweep(self):
        rows = view_size_sweep(view_sizes=(4, 8), n_nodes=64, seeds=(1,), max_rounds=60)
        assert [size for size, _ in rows] == [4, 8]

    def test_random_feed_ablation_shows_starvation(self):
        result = random_feed_ablation(n_nodes=64, seeds=(1,), max_rounds=25)
        assert result["with_random_feed"].n == 1
        assert result["without_random_feed"].failures == 1

    def test_core_flavor_comparison(self):
        result = core_flavor_comparison(n_nodes=48, seeds=(1,), max_rounds=80)
        assert set(result) == {"vicinity", "tman"}
        assert result["vicinity"]["core"].n == 1

    def test_monolithic_comparison(self):
        result = monolithic_comparison(n_nodes=54, seeds=(1,), max_rounds=40)
        assert result["layered_runtime_core"].n == 1
        # The monolithic baseline converges later or not at all.
        monolithic = result["monolithic_overlay"]
        layered = result["layered_runtime_core"]
        assert monolithic.failures == 1 or monolithic.mean > layered.mean

    def test_loss_tolerance_sweep(self):
        rows = loss_tolerance_sweep(
            loss_rates=(0.0, 0.3), n_nodes=48, seeds=(1,), max_rounds=100
        )
        assert [rate for rate, _ in rows] == [0.0, 0.3]
        for _, stats in rows:
            assert stats["core"].failures == 0
        # Loss never speeds things up.
        assert rows[1][1]["core"].mean >= rows[0][1]["core"].mean

    def test_heterogeneity_study(self):
        result = heterogeneity_study(n_nodes=64, seeds=(1,), max_rounds=100)
        assert set(result) == {"balanced", "skewed"}
        for variant in result.values():
            assert variant["core"].failures == 0
