"""measure_convergence's instrument hook: one event per completed seed."""

from __future__ import annotations

from repro.experiments.harness import measure_convergence
from repro.obs.collector import Collector


class TestSeedMeasuredEvents:
    def test_one_event_per_seed_serial_and_parallel(
        self, tiny_ring_assembly, fast_config
    ):
        def run(parallel):
            collector = Collector(gauge_every=0)
            stats = measure_convergence(
                tiny_ring_assembly,
                24,
                seeds=(1, 2),
                max_rounds=60,
                config=fast_config,
                parallel=parallel,
                instrument=collector,
            )
            return stats, collector

        serial_stats, serial = run(parallel=1)
        parallel_stats, fanned = run(parallel=2)
        assert serial_stats == parallel_stats
        assert serial.counter("seeds_measured") == 2
        # Post-hoc emission: the stream is identical either way.
        assert [e.details for e in serial.events] == [
            e.details for e in fanned.events
        ]
        for event, seed in zip(serial.events, (1, 2)):
            assert event.kind == "seed_measured"
            assert event.details["seed"] == seed
            assert event.details["nodes"] == 24
            assert "core" in event.details["rounds"]

    def test_no_instrument_means_no_events(self, tiny_ring_assembly, fast_config):
        stats = measure_convergence(
            tiny_ring_assembly,
            24,
            seeds=(1,),
            max_rounds=60,
            config=fast_config,
            parallel=1,
        )
        assert stats["core"].n == 1
