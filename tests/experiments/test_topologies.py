"""Tests for the predefined complex assemblies (experiment i)."""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.experiments.topologies import (
    grid_of_rings,
    iot_composite,
    line_of_stars,
    ring_of_rings,
    star_of_cliques,
)


class TestStarOfCliques:
    def test_structure(self):
        assembly = star_of_cliques(n_shards=3, shard_size=10, router_size=6)
        assert set(assembly.components) == {"router", "shard0", "shard1", "shard2"}
        assert assembly.total_nodes == 36
        assert len(assembly.links) == 3
        assert assembly.linked_components("router") == {"shard0", "shard1", "shard2"}

    def test_router_is_star_shards_are_cliques(self):
        assembly = star_of_cliques()
        assert assembly.component("router").shape.name == "star"
        assert assembly.component("shard0").shape.name == "clique"


class TestRingOfRings:
    def test_structure(self):
        assembly = ring_of_rings(n_rings=5, ring_size=8)
        assert len(assembly.components) == 5
        assert len(assembly.links) == 5
        # super-ring: each ring links to exactly two neighbours
        assert assembly.linked_components("ring0") == {"ring1", "ring4"}

    def test_single_ring_has_no_links(self):
        assembly = ring_of_rings(n_rings=1, ring_size=8)
        assert assembly.links == []

    def test_east_west_ports(self):
        assembly = ring_of_rings(n_rings=3, ring_size=10)
        spec = assembly.component("ring0")
        assert spec.has_port("west") and spec.has_port("east")


class TestGridOfRings:
    def test_mesh_links(self):
        assembly = grid_of_rings(rows=2, cols=3, ring_size=6)
        assert len(assembly.components) == 6
        # 2x3 mesh: horizontal 2*2 + vertical 3*1 = 7 links
        assert len(assembly.links) == 7
        assert assembly.linked_components("dc_0_0") == {"dc_0_1", "dc_1_0"}


class TestLineOfStars:
    def test_chain(self):
        assembly = line_of_stars(n_stages=4, stage_size=6)
        assert len(assembly.links) == 3
        assert assembly.linked_components("stage1") == {"stage0", "stage2"}


class TestIotComposite:
    def test_heterogeneous_shapes(self):
        assembly = iot_composite()
        shapes = {
            name: spec.shape.name for name, spec in assembly.components.items()
        }
        assert shapes == {
            "sensors": "random",
            "aggregation": "tree",
            "storage": "ring",
            "gateway": "clique",
        }
        assert len(assembly.links) == 3


@pytest.mark.parametrize(
    "factory,kwargs",
    [
        (star_of_cliques, dict(n_shards=2, shard_size=8, router_size=6)),
        (ring_of_rings, dict(n_rings=4, ring_size=8)),
        (grid_of_rings, dict(rows=2, cols=2, ring_size=6)),
        (line_of_stars, dict(n_stages=3, stage_size=6)),
        (iot_composite, dict(n_sensors=12, tree_size=7, storage_size=8, gateway_size=4)),
    ],
)
def test_every_topology_deploys_and_converges(factory, kwargs):
    """Experiment (i): each real-world-like assembly actually converges."""
    assembly = factory(**kwargs)
    deployment = Runtime(assembly, seed=13).deploy()
    report = deployment.run_until_converged(max_rounds=100)
    assert report.converged, f"{assembly.name}: {report.rounds}"
