"""Tests for the experiment harness and scale control."""

from __future__ import annotations

import os

import pytest

from repro.experiments import harness
from repro.experiments.harness import (
    ALL_SERIES,
    SERIES_TO_LAYER,
    current_scale,
    measure_convergence,
    measure_elementary,
    series_table,
)
from repro.experiments.topologies import ring_of_rings
from repro.metrics.stats import Stats
from repro.shapes import make_shape


class TestScale:
    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "ci"

    def test_full_scale_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "full")
        scale = current_scale()
        assert scale.name == "full"
        assert scale.fig3_node_count == 25600
        assert len(scale.seeds) == 25

    def test_unknown_value_falls_back_to_ci(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        assert current_scale().name == "ci"

    def test_ci_scale_matches_paper_shape(self):
        scale = harness._CI_SCALE
        assert scale.fig2_components == 20
        assert scale.fig2_node_counts[0] == 100
        # x-axis doubles, like the paper's log axis.
        ratios = [
            b / a
            for a, b in zip(scale.fig2_node_counts, scale.fig2_node_counts[1:])
        ]
        assert all(ratio == 2 for ratio in ratios)


class TestMeasurement:
    def test_measure_convergence_aggregates_layers(self):
        assembly = ring_of_rings(n_rings=4, ring_size=8)
        stats = measure_convergence(assembly, 32, seeds=(1, 2), max_rounds=60)
        assert set(stats) == {
            "core",
            "uo1",
            "uo2",
            "port_selection",
            "port_connection",
        }
        assert all(isinstance(value, Stats) for value in stats.values())
        assert all(value.n == 2 for value in stats.values())

    def test_measure_elementary(self):
        stats = measure_elementary(make_shape("ring"), 48, seeds=(1, 2), max_rounds=60)
        assert stats.n == 2
        assert stats.mean > 0

    def test_timeout_counts_as_failure(self):
        assembly = ring_of_rings(n_rings=4, ring_size=8)
        stats = measure_convergence(assembly, 32, seeds=(1,), max_rounds=1)
        assert any(value.failures == 1 for value in stats.values())

    def test_series_table_layout(self):
        cells = {
            name: Stats(mean=5.0, std=0.0, ci90=0.0, n=1)
            for name in ALL_SERIES
        }
        headers, rows = series_table([(100, cells)], x_label="# nodes")
        assert headers[0] == "# nodes"
        assert len(headers) == 1 + len(ALL_SERIES)
        assert rows[0][0] == 100

    def test_series_to_layer_consistent(self):
        assert set(SERIES_TO_LAYER.values()) == {
            "core",
            "uo1",
            "uo2",
            "port_selection",
            "port_connection",
        }
        assert set(SERIES_TO_LAYER) == set(ALL_SERIES)
