"""Interprocedural taint (DET1xx) and shard-safety (SHD) pass semantics.

The deep fixture packages under ``fixtures/deep/`` prove each code fires
and stays silent (see test_catalog_fixtures); these tests pin down the
*shape* of the findings — where a chain finding anchors, how direct-in-root
sources defer to their per-file twins, how pragmas and custom roots files
interact with the whole-program passes.
"""

from __future__ import annotations

import os

from repro.lint import analyze_project, deep_check
from repro.lint.roots import parse_roots
from repro.lint.taint import collect_sources

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "deep")


def project(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return str(tmp_path)


ROOTS = ["engine.py::Engine.run_round"]


class TestChainAnchoring:
    def test_finding_anchors_at_the_clean_call_site(self):
        root = os.path.join(FIXTURES, "det101_clock_via_helper")
        (diag,) = deep_check(root=root, package=(), roots=ROOTS)
        # The reported position is the innocent-looking call inside the
        # root — not the time.time() two hops away...
        assert diag.code == "DET101"
        assert diag.file.endswith("engine.py")
        assert diag.line == 8
        # ...but the message walks the whole chain down to the source.
        assert "clockutil.py:5" in diag.message
        assert (
            "engine.py::Engine.run_round -> metrics.py::record "
            "-> clockutil.py::now_stamp" in diag.message
        )

    def test_source_in_one_module_sink_via_another(self, tmp_path):
        # The acceptance shape: the source module is never imported by the
        # root; only the intermediary sees it.
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "import middle\n"
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        return middle.relay()\n"
                ),
                "middle.py": (
                    "import leaf\n"
                    "def relay():\n"
                    "    return leaf.stamp()\n"
                ),
                "leaf.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
            },
        )
        (diag,) = deep_check(root=root, package=(), roots=ROOTS)
        assert diag.code == "DET101"
        assert diag.file.endswith("engine.py")
        assert "leaf.py:3" in diag.message


class TestDirectInRoot:
    def test_covered_source_defers_to_per_file_twin(self, tmp_path):
        # time.time() directly in a root under sim/ belongs to DET003; the
        # deep pass must not double-report it.
        root = project(
            tmp_path,
            {
                "sim/engine.py": (
                    "import time\n"
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        return time.time()\n"
                ),
            },
        )
        diags = deep_check(
            root=root, package=(), roots=["sim/engine.py::Engine.run_round"]
        )
        assert diags == []

    def test_uncovered_source_is_reported_here(self, tmp_path):
        # id() has no per-file twin, so even a direct use in a root is the
        # deep pass's to report.
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "class Engine:\n"
                    "    def run_round(self, obj):\n"
                    "        return id(obj)\n"
                ),
            },
        )
        (diag,) = deep_check(root=root, package=(), roots=ROOTS)
        assert diag.code == "DET104"
        assert "directly in round hot path" in diag.message
        assert "engine.py::Engine.run_round" in diag.message


class TestColdSourcesStaySilent:
    def test_unreachable_source_is_not_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        return 0\n"
                ),
                "offline.py": (
                    "import time\n"
                    "def report():\n"
                    "    return time.time()\n"
                ),
            },
        )
        assert deep_check(root=root, package=(), roots=ROOTS) == []
        model = analyze_project(root=root, package=(), roots=ROOTS)
        assert [s.category for s in collect_sources(model.table)] == [
            "wallclock"
        ]


class TestDeepPragmas:
    FILES = {
        "engine.py": (
            "import helper\n"
            "class Engine:\n"
            "    def run_round(self):\n"
            "        return helper.stamp()  # repro-lint: disable=DET101\n"
        ),
        "helper.py": (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
    }

    def test_pragma_at_anchor_line_suppresses(self, tmp_path):
        root = project(tmp_path, self.FILES)
        assert deep_check(root=root, package=(), roots=ROOTS) == []

    def test_no_pragmas_mode_reports_anyway(self, tmp_path):
        root = project(tmp_path, self.FILES)
        (diag,) = deep_check(
            root=root, package=(), roots=ROOTS, respect_pragmas=False
        )
        assert diag.code == "DET101"


class TestRootsFile:
    def test_parse_roots_skips_comments_and_blanks(self):
        patterns = parse_roots(
            "# engine entry points\n"
            "\n"
            "engine.py::Engine.run_round  # the driver\n"
            "*::*.step\n"
        )
        assert patterns == ["engine.py::Engine.run_round", "*::*.step"]

    def test_bare_pattern_matches_any_path(self, tmp_path):
        root = project(
            tmp_path,
            {
                "somewhere.py": (
                    "import time\n"
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        return self.helper()\n"
                    "    def helper(self):\n"
                    "        return time.time()\n"
                ),
            },
        )
        diags = deep_check(root=root, package=(), roots=["Engine.run_round"])
        assert [d.code for d in diags] == ["DET101"]


class TestShardDetails:
    def test_local_shadow_is_not_a_global_mutation(self, tmp_path):
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "import state\n"
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        state.work()\n"
                ),
                "state.py": (
                    "CACHE = {}\n"
                    "def work():\n"
                    "    CACHE = {}\n"
                    "    CACHE['k'] = 1\n"
                    "    return CACHE\n"
                ),
            },
        )
        assert deep_check(root=root, package=(), roots=ROOTS) == []

    def test_global_declaration_defeats_the_shadow(self, tmp_path):
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "import state\n"
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        state.work()\n"
                ),
                "state.py": (
                    "CACHE = {}\n"
                    "def work():\n"
                    "    global CACHE\n"
                    "    CACHE = {}\n"
                ),
            },
        )
        diags = deep_check(root=root, package=(), roots=ROOTS)
        assert [d.code for d in diags] == ["SHD001"]
        assert "global rebind" in diags[0].message

    def test_cold_mutator_is_not_flagged(self, tmp_path):
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        return 0\n"
                ),
                "state.py": (
                    "CACHE = {}\n"
                    "def reset():\n"
                    "    CACHE.clear()\n"
                ),
            },
        )
        assert deep_check(root=root, package=(), roots=ROOTS) == []

    def test_class_scope_rng_flagged_even_when_cold(self, tmp_path):
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        return 0\n"
                ),
                "draws.py": (
                    "import random\n"
                    "class Chooser:\n"
                    "    rng = random.Random(7)\n"
                ),
            },
        )
        diags = deep_check(root=root, package=(), roots=ROOTS)
        assert [d.code for d in diags] == ["SHD002"]
        assert "class Chooser" in diags[0].message

    def test_mutable_default_outside_covered_layers_allowed(self, tmp_path):
        root = project(
            tmp_path,
            {
                "engine.py": (
                    "class Engine:\n"
                    "    def run_round(self):\n"
                    "        return 0\n"
                ),
                "util.py": "def push(item, buf=[]):\n    buf.append(item)\n",
            },
        )
        assert deep_check(root=root, package=(), roots=ROOTS) == []


class TestRealTree:
    def test_installed_package_deep_check_is_clean(self):
        assert deep_check() == []

    def test_model_covers_the_engine(self):
        model = analyze_project()
        assert "sim.engine.Engine.run_round" in model.roots
        assert len(model.hot) > 100  # the round really fans out
        # Protocol steps are hot through the roots file, not luck.
        assert any(q.endswith(".step") for q in model.roots)
