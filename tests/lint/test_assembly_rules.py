"""Assembly-verifier (RPR) rules: one bad fixture per rule, plus model checks."""

from __future__ import annotations

import os

import pytest

from repro.diagnostics import ERROR, WARNING, has_errors
from repro.dsl import TopologyBuilder
from repro.lint import lint_assembly, lint_topo_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: fixture file → (expected code, expected line, expected severity).
EXPECTED = [
    ("rpr001_syntax_error.topo", "RPR001", None, ERROR),
    ("rpr100_unknown_shape.topo", "RPR100", 2, ERROR),
    ("rpr101_unknown_component.topo", "RPR101", 5, ERROR),
    ("rpr102_unknown_port.topo", "RPR102", 8, ERROR),
    ("rpr103_duplicate_link.topo", "RPR103", 9, ERROR),
    ("rpr104_self_link.topo", "RPR104", 5, ERROR),
    ("rpr105_size_infeasible.topo", "RPR105", 2, ERROR),
    ("rpr106_node_budget.topo", "RPR106", 1, ERROR),
    ("rpr107_duplicate_component.topo", "RPR107", 3, ERROR),
    ("rpr108_bad_replica_index.topo", "RPR108", 8, ERROR),
    ("rpr109_empty_topology.topo", "RPR109", 1, ERROR),
    ("rpr201_unreferenced_port.topo", "RPR201", 3, WARNING),
    ("rpr202_island.topo", "RPR202", 3, WARNING),
    ("rpr203_over_subscription.topo", "RPR203", 4, WARNING),
    ("rpr204_rank_unsatisfiable.topo", "RPR204", 3, WARNING),
    ("rpr205_starvation.topo", "RPR205", 5, WARNING),
    ("rpr206_degenerate_size.topo", "RPR206", 2, WARNING),
]


@pytest.mark.parametrize("fixture,code,line,severity", EXPECTED)
def test_fixture_yields_documented_code(fixture, code, line, severity):
    path = os.path.join(FIXTURES, fixture)
    diagnostics = lint_topo_file(path)
    matching = [diag for diag in diagnostics if diag.code == code]
    assert matching, (
        f"{fixture}: expected {code}, got "
        f"{[(d.code, d.line, d.message) for d in diagnostics]}"
    )
    found = matching[0]
    assert found.severity == severity
    assert found.file == path
    if line is not None:
        assert found.line == line, f"{fixture}: {code} at line {found.line}, wanted {line}"
    else:
        assert found.line > 0


@pytest.mark.parametrize(
    "fixture",
    [name for name, _, _, severity in EXPECTED if severity == WARNING],
)
def test_warning_fixtures_have_no_errors(fixture):
    """Warning fixtures must stay compilable — only RPR2xx should fire."""
    diagnostics = lint_topo_file(os.path.join(FIXTURES, fixture))
    assert not has_errors(diagnostics), [
        (d.code, d.message) for d in diagnostics if d.is_error
    ]


class TestLintAssembly:
    """The programmatic (builder) entry point, no source locations."""

    def test_clean_assembly(self):
        builder = TopologyBuilder("Clean")
        builder.component("a", "ring", size=8).port("p", "lowest_id")
        builder.component("b", "clique", size=4).port("q", "lowest_id")
        builder.link(("a", "p"), ("b", "q"))
        assert lint_assembly(builder.build()) == []

    def test_unreferenced_port_warning(self):
        builder = TopologyBuilder("Dangling")
        builder.component("a", "ring", size=8).port("unused", "lowest_id")
        diagnostics = lint_assembly(builder.build())
        assert [diag.code for diag in diagnostics] == ["RPR201"]
        assert diagnostics[0].severity == WARNING
        assert diagnostics[0].file is None

    def test_island_warning(self):
        builder = TopologyBuilder("Split")
        builder.component("a", "ring", size=8)
        builder.component("b", "ring", size=8)
        diagnostics = lint_assembly(builder.build())
        assert "RPR202" in [diag.code for diag in diagnostics]

    def test_size_feasibility_is_checked_here(self):
        # The builder does not deploy, so an infeasible size only surfaces
        # through the linter (construction never calls validate_size).
        builder = TopologyBuilder("BadCube")
        builder.component("cube", "hypercube", size=12)
        diagnostics = lint_assembly(builder.build())
        assert [diag.code for diag in diagnostics] == ["RPR105"]
        assert diagnostics[0].is_error

    def test_degenerate_size_warning(self):
        builder = TopologyBuilder("Tiny")
        builder.component("lonely", "clique", size=1)
        diagnostics = lint_assembly(builder.build())
        assert [diag.code for diag in diagnostics] == ["RPR206"]

    def test_over_subscription_via_aliases(self):
        # hub is an alias of rank(0): the two selectors are provably equal.
        builder = TopologyBuilder("Oversub")
        star = builder.component("a", "star", size=8)
        star.port("front", "hub").port("back", "rank(0)")
        builder.component("b", "clique", size=4).port("q", "lowest_id")
        builder.component("c", "clique", size=4).port("q", "lowest_id")
        builder.link(("a", "front"), ("b", "q"))
        builder.link(("a", "back"), ("c", "q"))
        diagnostics = lint_assembly(builder.build())
        assert "RPR203" in [diag.code for diag in diagnostics]

    def test_distinct_selectors_not_flagged(self):
        builder = TopologyBuilder("Fine")
        ring = builder.component("a", "ring", size=8)
        ring.port("west", "rank(0)").port("east", "rank(4)")
        builder.component("b", "clique", size=4).port("q", "lowest_id")
        builder.component("c", "clique", size=4).port("q", "lowest_id")
        builder.link(("a", "west"), ("b", "q"))
        builder.link(("a", "east"), ("c", "q"))
        assert lint_assembly(builder.build()) == []


class TestReplicaHandling:
    def test_replicated_ports_counted_through_fanout(self, tmp_path):
        source = """topology R {
    component shard[3] : clique(size = 4) {
        port head : lowest_id
    }
    component hub : star(size = 4) {
        port south : hub
    }
    link shard[*].head -- hub.south
}
"""
        path = tmp_path / "replicas.topo"
        path.write_text(source, encoding="utf-8")
        assert lint_topo_file(str(path)) == []

    def test_partially_linked_replicas_not_flagged(self, tmp_path):
        # One pinned replica reference is enough to consider the port used.
        source = """topology R {
    component shard[2] : clique(size = 4) {
        port head : lowest_id
    }
    component hub : star(size = 4) {
        port south : hub
    }
    link shard[0].head -- hub.south
    link shard[1].head -- hub.south
}
"""
        path = tmp_path / "pinned.topo"
        path.write_text(source, encoding="utf-8")
        assert lint_topo_file(str(path)) == []
