"""Determinism-invariant (DET) rules on synthetic snippets, plus the self-check."""

from __future__ import annotations

import textwrap

from repro.lint import lint_python_source, self_check


def lint_snippet(source: str, rel_path: str = "gossip/synthetic.py"):
    return lint_python_source(textwrap.dedent(source), rel_path)


def codes(diagnostics):
    return [diag.code for diag in diagnostics]


class TestDet001ModuleLevelRandom:
    def test_direct_module_call_flagged(self):
        diags = lint_snippet(
            """
            import random

            def shuffle(xs):
                random.shuffle(xs)
            """
        )
        assert codes(diags) == ["DET001"]
        assert diags[0].line == 5

    def test_aliased_module_flagged(self):
        diags = lint_snippet(
            """
            import random as rnd

            def pick(xs):
                return rnd.choice(xs)
            """
        )
        assert codes(diags) == ["DET001"]

    def test_from_import_flagged(self):
        diags = lint_snippet(
            """
            from random import choice

            def pick(xs):
                return choice(xs)
            """
        )
        assert codes(diags) == ["DET001"]

    def test_rng_module_is_exempt(self):
        diags = lint_snippet(
            """
            import random

            def stream(seed):
                return random.Random(seed)
            """,
            rel_path="sim/rng.py",
        )
        assert diags == []

    def test_instance_methods_not_flagged(self):
        # Calls on an rng *instance* are the sanctioned pattern.
        diags = lint_snippet(
            """
            def pick(rng, xs):
                return rng.choice(xs)
            """
        )
        assert diags == []


class TestDet002UnseededRng:
    def test_unseeded_random_flagged(self):
        diags = lint_snippet(
            """
            import random

            def fresh():
                return random.Random()
            """
        )
        assert codes(diags) == ["DET002"]

    def test_seeded_random_allowed(self):
        diags = lint_snippet(
            """
            import random

            def fresh(seed):
                return random.Random(seed)
            """
        )
        assert diags == []

    def test_system_random_always_flagged(self):
        diags = lint_snippet(
            """
            import random

            def fresh():
                return random.SystemRandom(42)
            """
        )
        assert codes(diags) == ["DET002"]


class TestDet003WallClock:
    def test_time_time_flagged_in_sim_path(self):
        diags = lint_snippet(
            """
            import time

            def now():
                return time.time()
            """,
            rel_path="sim/engine.py",
        )
        assert codes(diags) == ["DET003"]

    def test_datetime_now_flagged(self):
        diags = lint_snippet(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            rel_path="faults/plane.py",
        )
        assert codes(diags) == ["DET003"]

    def test_module_spelling_flagged(self):
        diags = lint_snippet(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
            rel_path="core/runtime.py",
        )
        assert codes(diags) == ["DET003"]

    def test_perf_simulation_side_modules_are_covered(self):
        # The perf split: workloads/digest/cache are simulation-side and
        # clock-free; only the bench harness may read the wall clock.
        snippet = """
            import time

            def tick():
                return time.perf_counter()
            """
        for rel_path in ("perf/workloads.py", "perf/digest.py", "perf/cache.py"):
            assert codes(lint_snippet(snippet, rel_path=rel_path)) == ["DET003"]
        assert lint_snippet(snippet, rel_path="perf/bench.py") == []

    def test_heal_subsystem_is_covered(self):
        # The remediation engine is part of the simulation: its backoff
        # delays and corruption generators must draw from the sim streams,
        # never the wall clock.
        snippet = """
            import time

            def backoff():
                return time.monotonic()
            """
        for rel_path in ("heal/engine.py", "heal/policy.py", "heal/harness.py"):
            assert codes(lint_snippet(snippet, rel_path=rel_path)) == ["DET003"]

    def test_heal_subsystem_forbids_set_iteration(self):
        # Ordering rules apply too: remediation actions iterate node sets
        # in sorted order or not at all.
        diags = lint_snippet(
            """
            def pick(dead_ids):
                for node_id in set(dead_ids):
                    yield node_id
            """,
            rel_path="heal/actions.py",
        )
        assert codes(diags) == ["DET004"]

    def test_obs_package_is_covered_except_the_sanctioned_clock(self):
        # The observability subsystem is simulation-adjacent: collectors and
        # exporters must stay clock-free, with spans.py as the single
        # sanctioned wall-clock site every span measurement flows through.
        snippet = """
            import time

            def tick():
                return time.perf_counter()
            """
        for rel_path in ("obs/collector.py", "obs/export.py", "obs/hooks.py"):
            assert codes(lint_snippet(snippet, rel_path=rel_path)) == ["DET003"]
        assert lint_snippet(snippet, rel_path="obs/spans.py") == []

    def test_wall_clock_fine_outside_sim_paths(self):
        # Reporting/analysis code may legitimately timestamp its output.
        diags = lint_snippet(
            """
            import time

            def stamp():
                return time.time()
            """,
            rel_path="metrics/report.py",
        )
        assert diags == []


class TestDet004SetIteration:
    def test_for_over_set_call_flagged(self):
        diags = lint_snippet(
            """
            def merge(views):
                for entry in set(views):
                    yield entry
            """
        )
        assert codes(diags) == ["DET004"]

    def test_comprehension_over_set_literal_flagged(self):
        diags = lint_snippet(
            """
            def ids():
                return [x for x in {3, 1, 2}]
            """
        )
        assert codes(diags) == ["DET004"]

    def test_list_of_set_flagged(self):
        diags = lint_snippet(
            """
            def order(xs):
                return list(set(xs))
            """
        )
        assert codes(diags) == ["DET004"]

    def test_sorted_set_allowed(self):
        diags = lint_snippet(
            """
            def order(xs):
                for x in sorted(set(xs)):
                    yield x
            """
        )
        assert diags == []

    def test_plain_iterables_allowed(self):
        diags = lint_snippet(
            """
            def order(xs):
                for x in xs:
                    yield x
                return list(xs)
            """
        )
        assert diags == []

    def test_not_enforced_outside_ordering_paths(self):
        diags = lint_snippet(
            """
            def order(xs):
                return list(set(xs))
            """,
            rel_path="analysis/export.py",
        )
        assert diags == []


class TestDet005Popitem:
    def test_popitem_flagged(self):
        diags = lint_snippet(
            """
            def drain(d):
                return d.popitem()
            """,
            rel_path="core/layers/uo1.py",
        )
        assert codes(diags) == ["DET005"]

    def test_pop_with_key_allowed(self):
        diags = lint_snippet(
            """
            def drain(d, key):
                return d.pop(key)
            """,
            rel_path="core/layers/uo1.py",
        )
        assert diags == []


class TestSelfCheck:
    def test_framework_source_is_clean(self):
        """The enforced invariant: repro's own tree has zero DET findings."""
        assert self_check() == []

    def test_positions_reported(self, tmp_path):
        bad = tmp_path / "gossip"
        bad.mkdir()
        (bad / "views.py").write_text(
            "import random\n\n\ndef f():\n    return random.random()\n",
            encoding="utf-8",
        )
        diags = self_check(root=str(tmp_path))
        assert codes(diags) == ["DET001"]
        assert diags[0].line == 5
        assert diags[0].file.endswith("views.py")


class TestDet004SortedWrapperIdiom:
    """The materialize-then-order idiom used throughout heal/actions.py:
    ``ids = list(view); ids = sorted(ids)`` — hash order never escapes, so
    the earlier materialization must not be flagged."""

    def test_rebind_through_sorted_sanctions(self):
        diags = lint_snippet(
            """
            def targets(view):
                ids = list(set(view))
                ids = sorted(ids)
                return ids
            """
        )
        assert diags == []

    def test_in_place_sort_sanctions(self):
        diags = lint_snippet(
            """
            def targets(view):
                ids = list({d for d in view})
                ids.sort()
                return ids
            """
        )
        assert diags == []

    def test_unsanctioned_materialization_still_fires(self):
        diags = lint_snippet(
            """
            def targets(view):
                ids = list(set(view))
                return ids
            """
        )
        assert codes(diags) == ["DET004"]
        assert diags[0].line == 3

    def test_sorting_a_different_name_does_not_sanction(self):
        diags = lint_snippet(
            """
            def targets(view, other):
                ids = list(set(view))
                other = sorted(other)
                return ids
            """
        )
        assert codes(diags) == ["DET004"]

    def test_tracked_set_name_iteration_fires(self):
        diags = lint_snippet(
            """
            def merge(view, incoming):
                fresh = {d for d in incoming}
                for item in fresh:
                    view.append(item)
            """
        )
        assert codes(diags) == ["DET004"]
        assert diags[0].line == 4

    def test_tracked_set_name_through_sorted_allowed(self):
        diags = lint_snippet(
            """
            def merge(view, incoming):
                fresh = {d for d in incoming}
                for item in sorted(fresh):
                    view.append(item)
            """
        )
        assert diags == []

    def test_rebinding_clears_the_set_tracking(self):
        diags = lint_snippet(
            """
            def merge(incoming):
                fresh = {d for d in incoming}
                fresh = sorted(fresh)
                for item in fresh:
                    yield item
            """
        )
        assert diags == []

    def test_loop_target_shadows_tracked_name(self):
        diags = lint_snippet(
            """
            def scan(rows):
                item = {1, 2}
                total = len(item)
                for item in rows:
                    for cell in item:
                        yield cell, total
            """
        )
        assert diags == []

    def test_tracking_is_scope_local(self):
        diags = lint_snippet(
            """
            def first(incoming):
                fresh = {d for d in incoming}
                return len(fresh)

            def second(fresh):
                for item in fresh:
                    yield item
            """
        )
        assert diags == []

    def test_module_scope_pending_flushes(self):
        diags = lint_snippet(
            """
            IDS = list({1, 2, 3})
            """
        )
        assert codes(diags) == ["DET004"]
