"""Inline pragma parsing and its integration with the per-file linter."""

from __future__ import annotations

from repro.diagnostics import ERROR, Diagnostic
from repro.lint import lint_python_source, parse_pragmas
from repro.lint.pragmas import apply_pragmas, is_disabled


def diag(code, line):
    return Diagnostic(code=code, severity=ERROR, message="m", line=line)


class TestParsing:
    def test_same_line_pragma(self):
        pragmas = parse_pragmas("x = 1  # repro-lint: disable=DET004\n")
        assert pragmas == {1: {"DET004"}}

    def test_next_line_pragma(self):
        source = "# repro-lint: disable-next-line=DET003\nimport time\n"
        assert parse_pragmas(source) == {2: {"DET003"}}

    def test_multiple_codes(self):
        pragmas = parse_pragmas("x  # repro-lint: disable=DET003,DET101\n")
        assert pragmas == {1: {"DET003", "DET101"}}

    def test_all_sentinel(self):
        pragmas = parse_pragmas("x  # repro-lint: disable=all\n")
        assert is_disabled(pragmas, "DET004", 1)
        assert is_disabled(pragmas, "SHD001", 1)

    def test_codes_are_case_normalized(self):
        pragmas = parse_pragmas("x  # repro-lint: disable=det004\n")
        assert is_disabled(pragmas, "DET004", 1)

    def test_unrelated_comments_ignored(self):
        assert parse_pragmas("x = 1  # just a comment\n") == {}


class TestApplication:
    def test_apply_filters_only_matching_lines(self):
        pragmas = {3: {"DET004"}}
        survivors = apply_pragmas(
            [diag("DET004", 3), diag("DET004", 4), diag("DET005", 3)], pragmas
        )
        assert [(d.code, d.line) for d in survivors] == [
            ("DET004", 4),
            ("DET005", 3),
        ]


class TestLinterIntegration:
    SOURCE = (
        "def merge(view):\n"
        "    for item in {1, 2, 3}:  # repro-lint: disable=DET004\n"
        "        view.append(item)\n"
    )

    def test_pragma_suppresses_per_file_finding(self):
        assert lint_python_source(self.SOURCE, "gossip/views.py") == []

    def test_strict_mode_ignores_pragmas(self):
        diags = lint_python_source(
            self.SOURCE, "gossip/views.py", respect_pragmas=False
        )
        assert [d.code for d in diags] == ["DET004"]

    def test_next_line_spelling_in_context(self):
        source = (
            "def merge(view):\n"
            "    # repro-lint: disable-next-line=DET004\n"
            "    for item in {1, 2, 3}:\n"
            "        view.append(item)\n"
        )
        assert lint_python_source(source, "gossip/views.py") == []

    def test_pragma_for_other_code_does_not_suppress(self):
        source = (
            "def merge(view):\n"
            "    for item in {1, 2}:  # repro-lint: disable=DET005\n"
            "        view.append(item)\n"
        )
        diags = lint_python_source(source, "gossip/views.py")
        assert [d.code for d in diags] == ["DET004"]
