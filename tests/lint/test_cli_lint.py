"""The ``repro lint`` subcommand: exit codes, formats, and the examples gate."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLES = os.path.join(REPO_ROOT, "examples")
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def test_examples_are_clean(capsys):
    """Acceptance gate: every shipped example must lint without findings."""
    assert main(["lint", EXAMPLES]) == 0
    assert "clean: no diagnostics" in capsys.readouterr().out


def test_self_check_is_clean(capsys):
    assert main(["lint", "--self-check"]) == 0
    assert "clean: no diagnostics" in capsys.readouterr().out


def test_error_fixture_exits_nonzero(capsys):
    path = os.path.join(FIXTURES, "rpr101_unknown_component.topo")
    assert main(["lint", path]) == 1
    out = capsys.readouterr().out
    assert "RPR101" in out
    assert f"{path}:5" in out
    assert "1 error(s)" in out


def test_warning_fixture_exits_zero(capsys):
    path = os.path.join(FIXTURES, "rpr201_unreferenced_port.topo")
    assert main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "RPR201" in out
    assert "warning" in out


def test_json_format(capsys):
    path = os.path.join(FIXTURES, "rpr104_self_link.topo")
    assert main(["lint", path, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1
    assert payload["warnings"] == 0
    (diag,) = payload["diagnostics"]
    assert diag["code"] == "RPR104"
    assert diag["file"] == path
    assert diag["line"] == 5
    assert diag["title"]  # enriched from the catalog


def test_directory_scan_aggregates(capsys):
    # The whole fixture directory: every RPR error fixture contributes.
    assert main(["lint", FIXTURES, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    codes = {diag["code"] for diag in payload["diagnostics"]}
    assert {"RPR001", "RPR105", "RPR201", "RPR206"} <= codes
    assert payload["errors"] >= 10


def test_no_arguments_is_usage_error(capsys):
    assert main(["lint"]) == 2
    assert "at least one path" in capsys.readouterr().err


def test_missing_path_is_reported(capsys):
    assert main(["lint", os.path.join(FIXTURES, "no_such_file.topo")]) == 2
    assert "error:" in capsys.readouterr().err


def test_deep_mode_is_clean_on_the_real_tree(capsys):
    """Acceptance gate: repro lint --deep over src/repro has zero findings."""
    assert main(["lint", "--deep"]) == 0
    assert "clean: no diagnostics" in capsys.readouterr().out


@pytest.mark.slow
def test_deep_self_check_combined(capsys):
    assert main(["lint", "--deep", "--self-check"]) == 0
    assert "clean: no diagnostics" in capsys.readouterr().out


def test_sarif_format_without_findings(capsys):
    assert main(["lint", "--deep", "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["results"] == []


def test_sarif_format_with_findings(capsys):
    path = os.path.join(FIXTURES, "rpr104_self_link.topo")
    assert main(["lint", path, "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    (result,) = doc["runs"][0]["results"]
    assert result["ruleId"] == "RPR104"
    assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 5


def test_write_baseline_then_gate_passes(tmp_path, capsys):
    fixture = os.path.join(FIXTURES, "rpr104_self_link.topo")
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", fixture, "--write-baseline", "--baseline", baseline]) == 0
    assert "1 baselined finding(s)" in capsys.readouterr().out
    # Same findings, now absorbed: the gate goes green.
    assert main(["lint", fixture, "--baseline", baseline]) == 0
    captured = capsys.readouterr()
    assert "clean: no diagnostics" in captured.out
    assert "1 finding(s) suppressed" in captured.err


def test_stale_baseline_entries_reported(tmp_path, capsys):
    firing = os.path.join(FIXTURES, "rpr104_self_link.topo")
    clean = os.path.join(FIXTURES, "clean", "rpr104_cross_component_link.topo")
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", firing, "--write-baseline", "--baseline", baseline]) == 0
    capsys.readouterr()
    assert main(["lint", clean, "--baseline", baseline]) == 0
    assert "stale entry RPR104" in capsys.readouterr().err


def test_baseline_does_not_hide_new_findings(tmp_path, capsys):
    first = os.path.join(FIXTURES, "rpr104_self_link.topo")
    second = os.path.join(FIXTURES, "rpr101_unknown_component.topo")
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", first, "--write-baseline", "--baseline", baseline]) == 0
    capsys.readouterr()
    assert main(["lint", first, second, "--baseline", baseline]) == 1
    assert "RPR101" in capsys.readouterr().out


def test_no_pragmas_strict_mode_resurfaces_acknowledged_findings(capsys):
    # The tree carries reviewed inline pragmas; the strict sweep must
    # surface what they acknowledge instead of silently passing.
    code = main(["lint", "--self-check", "--no-pragmas"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET004" in out


def test_custom_roots_file(tmp_path, capsys):
    roots = tmp_path / "roots.txt"
    roots.write_text("# no entry points at all\n", encoding="utf-8")
    assert main(["lint", "--deep", "--roots", str(roots)]) == 0
    assert "clean: no diagnostics" in capsys.readouterr().out
