"""The ``repro lint`` subcommand: exit codes, formats, and the examples gate."""

from __future__ import annotations

import json
import os

from repro.cli import main

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
EXAMPLES = os.path.join(REPO_ROOT, "examples")
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def test_examples_are_clean(capsys):
    """Acceptance gate: every shipped example must lint without findings."""
    assert main(["lint", EXAMPLES]) == 0
    assert "clean: no diagnostics" in capsys.readouterr().out


def test_self_check_is_clean(capsys):
    assert main(["lint", "--self-check"]) == 0
    assert "clean: no diagnostics" in capsys.readouterr().out


def test_error_fixture_exits_nonzero(capsys):
    path = os.path.join(FIXTURES, "rpr101_unknown_component.topo")
    assert main(["lint", path]) == 1
    out = capsys.readouterr().out
    assert "RPR101" in out
    assert f"{path}:5" in out
    assert "1 error(s)" in out


def test_warning_fixture_exits_zero(capsys):
    path = os.path.join(FIXTURES, "rpr201_unreferenced_port.topo")
    assert main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "RPR201" in out
    assert "warning" in out


def test_json_format(capsys):
    path = os.path.join(FIXTURES, "rpr104_self_link.topo")
    assert main(["lint", path, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1
    assert payload["warnings"] == 0
    (diag,) = payload["diagnostics"]
    assert diag["code"] == "RPR104"
    assert diag["file"] == path
    assert diag["line"] == 5
    assert diag["title"]  # enriched from the catalog


def test_directory_scan_aggregates(capsys):
    # The whole fixture directory: every RPR error fixture contributes.
    assert main(["lint", FIXTURES, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    codes = {diag["code"] for diag in payload["diagnostics"]}
    assert {"RPR001", "RPR105", "RPR201", "RPR206"} <= codes
    assert payload["errors"] >= 10


def test_no_arguments_is_usage_error(capsys):
    assert main(["lint"]) == 2
    assert "at least one path" in capsys.readouterr().err


def test_missing_path_is_reported(capsys):
    assert main(["lint", os.path.join(FIXTURES, "no_such_file.topo")]) == 2
    assert "error:" in capsys.readouterr().err
