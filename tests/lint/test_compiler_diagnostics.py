"""Collect-mode compilation and the structured fields on DslSemanticError."""

from __future__ import annotations

import pytest

from repro.diagnostics import Diagnostic
from repro.dsl import compile_source
from repro.errors import DslSemanticError

BROKEN = """topology Broken {
    component a : ring(size = 8) {
        port p : lowest_id
    }
    link a.p -- ghost.q
    link a.p -- a.p
}
"""

CLEAN = """topology Clean {
    component a : ring(size = 8) {
        port p : lowest_id
    }
    component b : clique(size = 4) {
        port q : lowest_id
    }
    link a.p -- b.q
}
"""


class TestCollectMode:
    def test_collects_instead_of_raising(self):
        collected: list = []
        assembly = compile_source(BROKEN, diagnostics=collected, file="broken.topo")
        assert assembly is None
        codes = [diag.code for diag in collected]
        assert "RPR101" in codes  # ghost component
        assert "RPR104" in codes  # self-link
        for diag in collected:
            assert isinstance(diag, Diagnostic)
            assert diag.file == "broken.topo"
            assert diag.line > 0

    def test_clean_source_returns_assembly(self):
        collected: list = []
        assembly = compile_source(CLEAN, diagnostics=collected)
        assert collected == []
        assert assembly is not None
        assert assembly.name == "Clean"

    def test_default_mode_still_raises(self):
        with pytest.raises(DslSemanticError):
            compile_source(BROKEN)


class TestStructuredError:
    def test_fields_populated(self):
        with pytest.raises(DslSemanticError) as excinfo:
            compile_source(BROKEN)
        exc = excinfo.value
        assert exc.line == 5
        assert exc.column >= 1
        assert exc.code == "RPR101"
        assert "ghost" in exc.raw_message

    def test_message_format_unchanged(self):
        exc = DslSemanticError("nope", line=3, column=7)
        assert str(exc) == "nope (line 3, column 7)"
        assert exc.raw_message == "nope"

    def test_code_is_optional_metadata(self):
        # Hand-raised errors carry no code; the compiler always attaches one.
        exc = DslSemanticError("nope", line=1, column=1)
        assert exc.code is None
        coded = DslSemanticError("nope", line=1, column=1, code="RPR109")
        assert coded.code == "RPR109"
