"""Baseline suppression files and the SARIF reporter."""

from __future__ import annotations

import json

import pytest

from repro.diagnostics import ERROR, WARNING, Diagnostic
from repro.errors import ConfigurationError
from repro.lint import CATALOG, Baseline, render_sarif, write_baseline
from repro.lint.sarif import sarif_document


def diag(code="DET101", file="src/x.py", line=4, severity=ERROR, message="m"):
    return Diagnostic(
        code=code, severity=severity, message=message, file=file, line=line
    )


class TestBaseline:
    def test_roundtrip_suppresses_recorded_findings(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        first = diag(file=str(tmp_path / "src" / "x.py"))
        count = write_baseline(path, [first])
        assert count == 1
        baseline = Baseline.load(path)
        surviving, suppressed, stale = baseline.apply([first])
        assert surviving == []
        assert suppressed == 1
        assert stale == []

    def test_new_findings_survive(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        old = diag(file=str(tmp_path / "src" / "x.py"), line=4)
        new = diag(file=str(tmp_path / "src" / "x.py"), line=9)
        write_baseline(path, [old])
        surviving, suppressed, _ = Baseline.load(path).apply([old, new])
        assert [d.line for d in surviving] == [9]
        assert suppressed == 1

    def test_fixed_findings_go_stale(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        old = diag(file=str(tmp_path / "src" / "x.py"))
        write_baseline(path, [old])
        _, suppressed, stale = Baseline.load(path).apply([])
        assert suppressed == 0
        assert [entry["code"] for entry in stale] == ["DET101"]

    def test_fingerprint_is_relative_to_baseline_dir(self, tmp_path):
        # The recorded path must not depend on the checkout location.
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [diag(file=str(tmp_path / "src" / "x.py"))])
        payload = json.loads((tmp_path / "baseline.json").read_text())
        assert payload["entries"][0]["file"] == "src/x.py"
        assert payload["tool"] == "repro-lint"

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "nope.json"))
        assert len(baseline) == 0

    def test_garbage_file_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ConfigurationError):
            Baseline.load(str(path))

    def test_wrong_document_shape_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text('{"something": []}')
        with pytest.raises(ConfigurationError):
            Baseline.load(str(path))


class TestSarif:
    def test_document_structure(self):
        doc = sarif_document([diag(), diag(code="RPR201", severity=WARNING)])
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["tool"]["driver"]["rules"]) == len(CATALOG)
        assert [r["ruleId"] for r in run["results"]] == ["DET101", "RPR201"]

    def test_rule_index_points_into_the_catalog(self):
        doc = sarif_document([diag(code="SHD001")])
        (run,) = doc["runs"]
        (result,) = run["results"]
        rule = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert rule["id"] == "SHD001"

    def test_levels_follow_severity(self):
        doc = sarif_document([diag(code="RPR201", severity=WARNING)])
        (result,) = doc["runs"][0]["results"]
        assert result["level"] == "warning"

    def test_location_carries_line_and_column(self):
        doc = sarif_document(
            [
                Diagnostic(
                    code="DET101",
                    severity=ERROR,
                    message="m",
                    file="src/x.py",
                    line=4,
                    column=7,
                )
            ]
        )
        (result,) = doc["runs"][0]["results"]
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert location["physicalLocation"]["artifactLocation"]["uri"] == "src/x.py"
        assert (region["startLine"], region["startColumn"]) == (4, 7)

    def test_render_is_valid_json(self):
        payload = json.loads(render_sarif([diag()]))
        assert payload["runs"][0]["results"]

    def test_empty_run_still_carries_the_catalog(self):
        doc = sarif_document([])
        (run,) = doc["runs"]
        assert run["results"] == []
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(CATALOG)
