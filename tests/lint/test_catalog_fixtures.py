"""Catalog/fixture drift gate (the lint suite's meta-test).

Every rule in :data:`repro.lint.catalog.CATALOG` must ship with at least
one *firing* fixture (proving the rule detects what it claims) and one
*clean* fixture (proving the near-miss stays silent), and every fixture
must map back to a cataloged code. Adding a rule without fixtures — or
leaving fixtures behind after deleting a rule — fails this suite, so the
catalog and the regression corpus can never drift apart.

Fixture conventions (all under ``tests/lint/fixtures/``):

- ``<code>_*.topo`` — firing assembly fixture; ``clean/<code>_*.topo`` is
  its clean twin.
- ``<code>_*.py`` — firing per-file determinism fixture; the first line is
  ``# path: <rel_path>`` naming the package-relative path the rules see.
  Clean twins live in ``clean/``.
- ``deep/<code>_*/`` — firing whole-program fixture package: a ``ROOTS``
  file plus modules, run through :func:`repro.lint.deep_check`. Clean
  twins live in ``deep/clean/``.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.lint import CATALOG, deep_check, lint_python_source, lint_topo_file, load_roots

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

_CODE_RE = re.compile(r"^(rpr|det|shd|api)(\d+)_")


def _code_of(name: str):
    match = _CODE_RE.match(name)
    return f"{match.group(1).upper()}{match.group(2)}" if match else None


def _discover():
    """(code, kind, path, is_clean) for every fixture on disk."""
    found = []

    def scan_flat(directory, is_clean):
        if not os.path.isdir(directory):
            return
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            if not os.path.isfile(path):
                continue
            code = _code_of(name)
            if name.endswith(".topo"):
                found.append((code, "topo", path, is_clean))
            elif name.endswith(".py"):
                found.append((code, "py", path, is_clean))

    def scan_deep(directory, is_clean):
        if not os.path.isdir(directory):
            return
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            if os.path.isdir(path) and name != "clean":
                found.append((_code_of(name), "deep", path, is_clean))

    scan_flat(FIXTURES, False)
    scan_flat(os.path.join(FIXTURES, "clean"), True)
    scan_deep(os.path.join(FIXTURES, "deep"), False)
    scan_deep(os.path.join(FIXTURES, "deep", "clean"), True)
    return found


ALL_FIXTURES = _discover()


def _run_fixture(kind: str, path: str):
    """The set of codes a fixture produces under its natural checker."""
    if kind == "topo":
        return {diag.code for diag in lint_topo_file(path)}
    if kind == "py":
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        first = source.splitlines()[0]
        assert first.startswith("# path:"), f"{path} lacks a '# path:' header"
        rel_path = first.split(":", 1)[1].strip()
        return {
            diag.code
            for diag in lint_python_source(source, rel_path, file=path)
        }
    assert kind == "deep"
    roots = load_roots(os.path.join(path, "ROOTS"))
    return {
        diag.code for diag in deep_check(root=path, package=(), roots=roots)
    }


class TestCatalogCoverage:
    def test_every_code_has_a_firing_fixture(self):
        firing = {code for code, _, _, clean in ALL_FIXTURES if not clean}
        missing = sorted(set(CATALOG) - firing)
        assert not missing, f"catalog codes without a firing fixture: {missing}"

    def test_every_code_has_a_clean_fixture(self):
        clean = {code for code, _, _, is_clean in ALL_FIXTURES if is_clean}
        missing = sorted(set(CATALOG) - clean)
        assert not missing, f"catalog codes without a clean fixture: {missing}"

    def test_every_fixture_names_a_cataloged_code(self):
        strays = sorted(
            os.path.basename(path)
            for code, _, path, _ in ALL_FIXTURES
            if code is None or code not in CATALOG
        )
        assert not strays, f"fixtures for codes absent from the catalog: {strays}"


@pytest.mark.parametrize(
    "code,kind,path",
    [
        (code, kind, path)
        for code, kind, path, clean in ALL_FIXTURES
        if not clean and code is not None
    ],
    ids=lambda value: os.path.basename(str(value)) if os.sep in str(value) else None,
)
def test_firing_fixture_fires(code, kind, path):
    produced = _run_fixture(kind, path)
    assert code in produced, (
        f"{os.path.basename(path)} should produce {code}, got {sorted(produced)}"
    )


@pytest.mark.parametrize(
    "code,kind,path",
    [
        (code, kind, path)
        for code, kind, path, clean in ALL_FIXTURES
        if clean and code is not None
    ],
    ids=lambda value: os.path.basename(str(value)) if os.sep in str(value) else None,
)
def test_clean_fixture_stays_silent(code, kind, path):
    produced = _run_fixture(kind, path)
    assert code not in produced, (
        f"{os.path.basename(path)} must not produce {code} "
        f"(got {sorted(produced)})"
    )
