# path: core/pick.py
"""Firing fixture: unseeded RNG constructions."""
import random


def make_rng():
    return random.Random()


def make_os_rng():
    return random.SystemRandom()
