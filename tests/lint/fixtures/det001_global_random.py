# path: gossip/peers.py
"""Firing fixture: interpreter-global random draw in a gossip module."""
import random


def pick_peer(view):
    return random.choice(view)
