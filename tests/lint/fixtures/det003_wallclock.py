# path: sim/clock.py
"""Firing fixture: wall-clock reads in a simulation path."""
import time
from datetime import datetime


def stamp():
    return time.time()


def when():
    return datetime.now()
