import rngutil


def pick(view):
    return view[rngutil.draw(len(view))]
