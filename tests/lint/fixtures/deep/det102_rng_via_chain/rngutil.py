from random import randrange


def draw(bound):
    return randrange(bound)
