import picker


class Engine:
    def run_round(self, view):
        return picker.pick(view)
