def merge(incoming):
    merged = []
    for item in set(incoming):
        merged.append(item)
    return merged
