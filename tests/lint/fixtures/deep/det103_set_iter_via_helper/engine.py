import views


class Engine:
    def run_round(self, incoming):
        return views.merge(incoming)
