import tuning


class Engine:
    def run_round(self, nodes):
        return tuning.fanout() * len(nodes)
