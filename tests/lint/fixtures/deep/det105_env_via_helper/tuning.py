import os


def fanout():
    return int(os.getenv("FANOUT", "3"))
