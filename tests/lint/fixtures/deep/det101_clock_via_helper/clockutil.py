import time


def now_stamp():
    return time.time()
