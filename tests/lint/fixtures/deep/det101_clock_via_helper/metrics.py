import clockutil

LOG = []


def record(node):
    return (node, clockutil.now_stamp())
