"""The call site looks clean: no time import anywhere in this module."""
import metrics


class Engine:
    def run_round(self, nodes):
        for node in nodes:
            metrics.record(node)
