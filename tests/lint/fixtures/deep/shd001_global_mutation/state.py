CACHE = {}
SEEN = []


def remember(key, value):
    CACHE[key] = value
    SEEN.append(key)
