import state


class Engine:
    def run_round(self, nodes):
        for node in nodes:
            state.remember(node.key, node.value)
