import state


class Engine:
    def run_round(self, ctx, nodes):
        for node in nodes:
            state.remember(ctx.store, node.key, node.value)
