LIMITS = {"max_entries": 128}


def remember(store, key, value):
    if len(store) < LIMITS["max_entries"]:
        store[key] = value
    return store
