def merge(incoming):
    merged = []
    for item in sorted(set(incoming)):
        merged.append(item)
    return merged
