def key_of(obj):
    return obj.node_id
