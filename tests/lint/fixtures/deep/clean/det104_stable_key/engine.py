import keys


class Engine:
    def run_round(self, nodes):
        return sorted(nodes, key=keys.key_of)
