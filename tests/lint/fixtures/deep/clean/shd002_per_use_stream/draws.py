import random


def choose(seed, view):
    rng = random.Random(seed)
    return view[rng.randrange(len(view))]
