import draws


class Engine:
    def run_round(self, ctx, view):
        return draws.choose(ctx.seed, view)
