def push(item, buf=None):
    if buf is None:
        buf = []
    buf.append(item)
    return buf
