from gossip import buffer


class Engine:
    def run_round(self, items):
        for item in items:
            buffer.push(item)
