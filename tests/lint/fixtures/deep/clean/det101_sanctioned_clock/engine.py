from obs import spans


class Engine:
    def run_round(self, nodes):
        return spans.wall_clock()
