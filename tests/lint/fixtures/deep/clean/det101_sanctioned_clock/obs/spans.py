import time


def wall_clock():
    return time.perf_counter()
