class GossipParams:
    view_size: int = 8
    gossip_size: int = 4
    healer: int = 1
    swapper: int = 1
    backend: str = "object"


class TransportCosts:
    header_bytes: int = 16
    descriptor_bytes: int = 24


class SimulationConfig:
    master_seed: int = 1
    max_rounds: int = 120
    gossip: object = None
    costs: object = None
