import random


def pick(seed, view):
    rng = random.Random(seed)
    return view[rng.randrange(len(view))]
