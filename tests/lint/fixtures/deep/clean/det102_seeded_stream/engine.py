import picker


class Engine:
    def run_round(self, ctx, view):
        return picker.pick(ctx.seed, view)
