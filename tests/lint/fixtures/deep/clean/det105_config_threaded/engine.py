import tuning


class Engine:
    def run_round(self, ctx, nodes):
        return tuning.fanout(ctx.config) * len(nodes)
