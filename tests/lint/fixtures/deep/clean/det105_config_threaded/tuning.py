def fanout(config):
    return config.get("fanout", 3)
