class ShardPlan:
    n_nodes: int = 64
    n_shards: int = 1
