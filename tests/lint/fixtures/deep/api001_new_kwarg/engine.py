class Engine:
    def run_round(self):
        return None
