import draws


class Engine:
    def run_round(self, view):
        return draws.choose(view)
