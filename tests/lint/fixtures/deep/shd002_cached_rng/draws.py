import random

_RNG = random.Random(42)


class Chooser:
    rng = random.Random(7)


def choose(view):
    return view[_RNG.randrange(len(view))]
