def key_of(obj):
    return id(obj)
