def push(item, buf=[]):
    buf.append(item)
    return buf


def tally(item, *, counts={}):
    counts[item] = counts.get(item, 0) + 1
    return counts
