# path: core/table.py
"""Firing fixture: popitem couples behavior to insertion order."""


def evict_one(table):
    return table.popitem()
