# path: perf/bench.py
"""Clean twin: the timing harness is the sanctioned clock site."""
import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
