# path: heal/actions.py
"""Clean twin: the sorted-wrapper idiom — materialize, then order."""


def targets(candidates, view):
    wanted = {c for c in candidates if c not in view}
    ids = list(wanted)
    ids = sorted(ids)
    for node_id in ids:
        yield node_id


def survivors(view):
    alive = list({d.node_id for d in view if d.alive})
    alive.sort()
    return alive
