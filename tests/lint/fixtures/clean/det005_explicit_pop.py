# path: core/table.py
"""Clean twin: evict a deterministic, explicitly chosen key."""


def evict_one(table):
    oldest = min(table)
    return table.pop(oldest)
