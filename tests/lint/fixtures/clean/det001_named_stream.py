# path: gossip/peers.py
"""Clean twin: draws flow through the ctx-threaded seeded stream."""


def pick_peer(ctx, view):
    rng = ctx.rng("gossip.select")
    return view[rng.randrange(len(view))]
