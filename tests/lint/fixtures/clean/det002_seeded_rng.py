# path: core/pick.py
"""Clean twin: RNG constructed from a derived seed."""
import random


def make_rng(seed):
    return random.Random(seed)
