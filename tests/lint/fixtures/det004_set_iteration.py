# path: gossip/merge.py
"""Firing fixture: hash-order leaks into iteration and materialization."""


def merge(view, incoming):
    fresh = {d for d in incoming if d not in view}
    for descriptor in fresh:
        view.append(descriptor)
    return list({d.node_id for d in view})


def order_unsanctioned(view):
    ids = list({d.node_id for d in view})
    return ids
