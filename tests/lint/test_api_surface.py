"""API001: the pinned-config-surface rule of ``repro lint --deep``."""

from __future__ import annotations

import pytest

from repro.lint import api_surface
from repro.lint.api_surface import api_surface_check, pinned_fields
from repro.lint.symbols import SymbolTable


def table_for(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return SymbolTable.build(str(tmp_path), ())


PLAN = ("conf/plan.py", "Plan")


@pytest.fixture
def pin_plan(monkeypatch):
    monkeypatch.setattr(
        api_surface, "PINNED_SURFACES", {PLAN: ("alpha", "beta")}
    )


def test_real_tree_is_clean():
    """The shipped pins match the shipped dataclasses exactly."""
    table = SymbolTable.build(None, ("repro",))
    assert api_surface_check(table) == []


def test_matching_surface_is_clean(tmp_path, pin_plan):
    table = table_for(
        tmp_path,
        {"conf/plan.py": "class Plan:\n    alpha: int = 1\n    beta: str = 'x'\n"},
    )
    assert api_surface_check(table) == []


def test_new_field_flagged(tmp_path, pin_plan):
    table = table_for(
        tmp_path,
        {
            "conf/plan.py": (
                "class Plan:\n"
                "    alpha: int = 1\n"
                "    beta: str = 'x'\n"
                "    gamma: float = 0.0\n"
            )
        },
    )
    (diag,) = api_surface_check(table)
    assert diag.code == "API001" and diag.severity == "error"
    assert "new config kwarg Plan.gamma" in diag.message
    assert "RunnerConfig" in diag.message  # points at where knobs belong
    assert diag.line == 4  # anchored at the offending field


def test_removed_field_flagged(tmp_path, pin_plan):
    table = table_for(
        tmp_path, {"conf/plan.py": "class Plan:\n    alpha: int = 1\n"}
    )
    (diag,) = api_surface_check(table)
    assert "Plan.beta was removed" in diag.message


def test_missing_class_flagged(tmp_path, pin_plan):
    table = table_for(tmp_path, {"conf/plan.py": "class Other:\n    x: int = 1\n"})
    (diag,) = api_surface_check(table)
    assert "no longer defined" in diag.message


def test_missing_module_flagged(tmp_path, monkeypatch):
    monkeypatch.setattr(
        api_surface,
        "PINNED_SURFACES",
        {PLAN: ("alpha",), ("conf/extra.py", "Extra"): ("gamma",)},
    )
    table = table_for(tmp_path, {"conf/plan.py": "class Plan:\n    alpha: int = 1\n"})
    (diag,) = api_surface_check(table)
    assert "module is gone" in diag.message and "Extra" in diag.message


def test_foreign_tree_without_pinned_modules_skipped(tmp_path, pin_plan):
    """A tree containing none of the pinned modules is not the package."""
    table = table_for(tmp_path, {"conf/other.py": "x = 1\n"})
    assert api_surface_check(table) == []


def test_private_and_constant_names_ignored(tmp_path, pin_plan):
    table = table_for(
        tmp_path,
        {
            "conf/plan.py": (
                "class Plan:\n"
                "    alpha: int = 1\n"
                "    beta: str = 'x'\n"
                "    _cache: dict = None\n"
                "    LIMIT: int = 9\n"
                "    plain = 'unannotated'\n"
            )
        },
    )
    assert api_surface_check(table) == []


def test_pinned_fields_helper():
    pins = pinned_fields(["RunnerConfig", "ShardPlan"])
    assert pins["ShardPlan"] == ("n_nodes", "n_shards")
    assert "kind" in pins["RunnerConfig"]
