"""Symbol table and call-graph construction on synthetic fixture packages.

Each test materializes a small package in ``tmp_path`` and builds the
project model over it — the same code path ``repro lint --deep`` uses, but
with topologies chosen to stress one resolution mechanism at a time:
cycles, dynamic-dispatch fallback, re-exported symbols, nested defs, and
callback references.
"""

from __future__ import annotations

import pytest

from repro.lint.callgraph import FALLBACK_LIMIT, CallGraph
from repro.lint.symbols import SymbolTable, module_name_for


def build(tmp_path, files, package=()):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    table = SymbolTable.build(str(tmp_path), package)
    return table, CallGraph.build(table)


def edge_pairs(graph):
    return {
        (site.caller, site.callee)
        for sites in graph.edges.values()
        for site in sites
    }


class TestSymbolTable:
    def test_module_names(self):
        assert module_name_for("gossip/views.py") == "gossip.views"
        assert module_name_for("gossip/__init__.py") == "gossip"
        assert module_name_for("__init__.py") == ""
        assert module_name_for("engine.py") == "engine"

    def test_functions_and_methods_indexed(self, tmp_path):
        table, _ = build(
            tmp_path,
            {
                "mod.py": (
                    "def plain():\n"
                    "    pass\n"
                    "class Box:\n"
                    "    def method(self):\n"
                    "        def inner():\n"
                    "            pass\n"
                    "        return inner\n"
                )
            },
        )
        assert set(table.functions) == {
            "mod.plain",
            "mod.Box.method",
            "mod.Box.method.inner",
        }
        info = table.functions["mod.Box.method"]
        assert info.class_name == "Box"
        assert info.display() == "mod.py::Box.method"

    def test_class_name_resolves_to_constructor(self, tmp_path):
        table, _ = build(
            tmp_path,
            {
                "things.py": (
                    "class Thing:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                )
            },
        )
        info = table.function("things.Thing")
        assert info is not None and info.qname == "things.Thing.__init__"

    def test_reexported_symbol_resolves_through_init(self, tmp_path):
        table, graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.impl import helper\n",
                "pkg/impl.py": "def helper():\n    pass\n",
                "user.py": (
                    "from pkg import helper\n"
                    "def caller():\n"
                    "    helper()\n"
                ),
            },
        )
        # The alias chain user->pkg.helper->pkg.impl.helper dealiases.
        resolved = table.resolve(table.modules["user"], "helper")
        assert resolved is not None and resolved.qname == "pkg.impl.helper"
        assert ("user.caller", "pkg.impl.helper") in edge_pairs(graph)

    def test_relative_import_resolves(self, tmp_path):
        table, graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": (
                    "from .b import leaf\n"
                    "def entry():\n"
                    "    leaf()\n"
                ),
                "pkg/b.py": "def leaf():\n    pass\n",
            },
        )
        assert ("pkg.a.entry", "pkg.b.leaf") in edge_pairs(graph)

    def test_package_prefix_strips(self, tmp_path):
        table, graph = build(
            tmp_path,
            {
                "sub/util.py": "def work():\n    pass\n",
                "main.py": (
                    "from myproj.sub import util\n"
                    "def go():\n"
                    "    util.work()\n"
                ),
            },
            package=("myproj",),
        )
        assert ("main.go", "sub.util.work") in edge_pairs(graph)


class TestCallGraph:
    def test_cycle_is_built_and_reachability_terminates(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "a.py": (
                    "import b\n"
                    "def ping(n):\n"
                    "    return b.pong(n - 1)\n"
                ),
                "b.py": (
                    "import a\n"
                    "def pong(n):\n"
                    "    return a.ping(n - 1)\n"
                ),
            },
        )
        pairs = edge_pairs(graph)
        assert ("a.ping", "b.pong") in pairs
        assert ("b.pong", "a.ping") in pairs
        assert graph.reachable_from(["a.ping"]) == {"a.ping", "b.pong"}

    def test_shortest_path_through_a_cycle(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "a.py": (
                    "import b\n"
                    "def ping(n):\n"
                    "    return b.pong(n - 1)\n"
                ),
                "b.py": (
                    "import a\n"
                    "def pong(n):\n"
                    "    return a.ping(n - 1)\n"
                ),
            },
        )
        path = graph.shortest_path(["a.ping"], "b.pong")
        assert [site.callee for site in path] == ["b.pong"]
        assert graph.shortest_path(["a.ping"], "a.ping") == []

    def test_self_method_resolution(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "proto.py": (
                    "class Layer:\n"
                    "    def step(self, ctx):\n"
                    "        self.exchange(ctx)\n"
                    "    def exchange(self, ctx):\n"
                    "        pass\n"
                )
            },
        )
        pairs = edge_pairs(graph)
        assert ("proto.Layer.step", "proto.Layer.exchange") in pairs
        (site,) = [
            s for s in graph.edges["proto.Layer.step"] if s.via == "self"
        ]
        assert site.callee == "proto.Layer.exchange"

    def test_dynamic_dispatch_falls_back_to_name(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "driver.py": (
                    "def run(layers, ctx):\n"
                    "    for layer in layers:\n"
                    "        layer.exchange(ctx)\n"
                ),
                "impl.py": (
                    "class Gossip:\n"
                    "    def exchange(self, ctx):\n"
                    "        pass\n"
                    "class Heal:\n"
                    "    def exchange(self, ctx):\n"
                    "        pass\n"
                ),
            },
        )
        fallback = {
            (site.caller, site.callee)
            for sites in graph.edges.values()
            for site in sites
            if site.via == "fallback"
        }
        assert ("driver.run", "impl.Gossip.exchange") in fallback
        assert ("driver.run", "impl.Heal.exchange") in fallback

    def test_fallback_skips_plain_functions(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "driver.py": (
                    "def run(obj, ctx):\n"
                    "    obj.transmogrify(ctx)\n"
                ),
                "impl.py": "def transmogrify(ctx):\n    pass\n",
            },
        )
        # A free function is never attribute-dispatched.
        assert edge_pairs(graph) == set()

    def test_fallback_bounded_by_limit(self, tmp_path):
        classes = "\n".join(
            f"class C{i}:\n    def widely(self):\n        pass"
            for i in range(FALLBACK_LIMIT + 1)
        )
        _, graph = build(
            tmp_path,
            {
                "impl.py": classes + "\n",
                "driver.py": "def run(obj):\n    obj.widely()\n",
            },
        )
        assert "driver.run" not in graph.edges

    def test_nested_def_edge(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "mod.py": (
                    "def outer():\n"
                    "    def inner():\n"
                    "        pass\n"
                    "    return inner\n"
                )
            },
        )
        (site,) = graph.edges["mod.outer"]
        assert site.callee == "mod.outer.inner"
        assert site.via == "nested"

    def test_callback_reference_edge(self, tmp_path):
        _, graph = build(
            tmp_path,
            {
                "keys.py": "def key_of(obj):\n    return obj.node_id\n",
                "driver.py": (
                    "import keys\n"
                    "def run(nodes):\n"
                    "    return sorted(nodes, key=keys.key_of)\n"
                ),
            },
        )
        refs = [
            site
            for sites in graph.edges.values()
            for site in sites
            if site.via == "ref"
        ]
        assert [(s.caller, s.callee) for s in refs] == [
            ("driver.run", "keys.key_of")
        ]

    def test_syntax_error_module_is_skipped(self, tmp_path):
        table, graph = build(
            tmp_path,
            {
                "broken.py": "def oops(:\n",
                "fine.py": "def ok():\n    pass\n",
            },
        )
        assert "broken" not in table.modules
        assert "fine.ok" in table.functions


@pytest.mark.parametrize("pattern,expected", [
    ("engine.py::Engine.run_round", {"engine.Engine.run_round"}),
    ("*::*.step", {"layer.Layer.step"}),
    ("missing.py::*", set()),
])
def test_root_patterns_match(tmp_path, pattern, expected):
    from repro.lint.roots import match_roots

    table, _ = build(
        tmp_path,
        {
            "engine.py": (
                "class Engine:\n"
                "    def run_round(self):\n"
                "        pass\n"
            ),
            "layer.py": (
                "class Layer:\n"
                "    def step(self, ctx):\n"
                "        pass\n"
            ),
        },
    )
    assert set(match_roots(table, [pattern])) == expected
