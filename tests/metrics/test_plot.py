"""Tests for the ASCII plot helpers."""

from __future__ import annotations

from repro.metrics.plot import ascii_chart, sparkline


class TestAsciiChart:
    def test_renders_grid_with_legend(self):
        chart = ascii_chart(
            {"baseline": [1, 2, 3, 4], "overhead": [2, 3, 4, 5]},
            width=20,
            height=8,
        )
        lines = chart.splitlines()
        assert len(lines) == 9  # 8 grid rows + legend
        assert "baseline" in lines[-1] and "overhead" in lines[-1]
        assert "┤" in lines[0] and "┴" in lines[-2]

    def test_y_axis_labels(self):
        chart = ascii_chart({"s": [0, 10]}, width=10, height=5)
        assert chart.splitlines()[0].strip().startswith("10")

    def test_monotone_series_monotone_rows(self):
        chart = ascii_chart({"up": list(range(32))}, width=32, height=10)
        rows = chart.splitlines()[:-1]
        first_col = [line[10:].find("*") for line in rows]
        positions = [
            (row_index, column)
            for row_index, column in enumerate(first_col)
            if column >= 0
        ]
        # Higher rows (smaller index) hold later (larger) columns.
        sorted_by_row = sorted(positions)
        columns = [column for _, column in sorted_by_row]
        assert columns == sorted(columns, reverse=True)

    def test_empty_series(self):
        assert ascii_chart({}) == "(no data)"
        assert ascii_chart({"x": []}) == "(no data)"

    def test_constant_zero_series(self):
        chart = ascii_chart({"flat": [0, 0, 0]}, width=10, height=4)
        assert "flat" in chart

    def test_labels(self):
        chart = ascii_chart(
            {"s": [1, 2]}, width=8, height=4, y_label="rounds", x_label="nodes"
        )
        assert chart.splitlines()[0] == "rounds"
        assert "nodes" in chart


class TestSparkline:
    def test_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "███"
