"""MetricsRegistry — the shared aggregation path of report/obs."""

from __future__ import annotations

import json

from repro.core import Runtime
from repro.metrics.registry import MetricsRegistry
from repro.obs.collector import Collector
from repro.obs.hooks import attach_collector
from repro.obs.trace import TraceEvent


class TestSections:
    def test_add_and_render(self):
        registry = MetricsRegistry()
        registry.add_section("demo", ("a", "b"), [(1, 2), (3, 4)])
        assert registry.titles() == ["demo"]
        assert registry.section("demo")[1] == ("a", "b")
        assert registry.section("missing") is None
        rendered = registry.render()
        assert "demo" in rendered and "3" in rendered

    def test_empty_sections_are_not_rendered(self):
        registry = MetricsRegistry()
        registry.add_section("empty", ("a",), [])
        assert registry.render() == ""

    def test_to_dict_is_json_friendly(self):
        registry = MetricsRegistry()
        registry.add_section("demo", ("a",), [(1,)])
        assert json.loads(json.dumps(registry.to_dict())) == {
            "demo": {"headers": ["a"], "rows": [[1]]}
        }


class TestFeeders:
    def test_from_events_summarizes_kinds(self):
        events = [
            TraceEvent(round=0, kind="deploy", details={}),
            TraceEvent(round=2, kind="node_crash", details={}),
            TraceEvent(round=5, kind="node_crash", details={}),
        ]
        registry = MetricsRegistry.from_events(events)
        _title, _headers, rows = registry.section("events")
        assert ("node_crash", 2, 2, 5) in rows
        assert ("deploy", 1, 0, 0) in rows

    def test_from_collector_has_all_telemetry_sections(self):
        collector = Collector(gauge_every=0)
        collector.count("exchanges", 3, layer="uo1")
        collector.gauge("population", 24)
        collector.emit("deploy")
        collector.emit("mystery")
        registry = MetricsRegistry.from_collector(collector)
        assert registry.titles() == [
            "counters",
            "gauges",
            "spans",
            "events",
            "unknown event kinds",
        ]

    def test_for_deployment_shares_the_telemetry_path(
        self, two_component_assembly, fast_config
    ):
        deployment = Runtime(
            two_component_assembly, config=fast_config, seed=11
        ).deploy(24)
        collector = attach_collector(deployment, gauge_every=4)
        report = deployment.run_until_converged(max_rounds=80)
        registry = MetricsRegistry.for_deployment(deployment, report, collector)
        titles = registry.titles()
        assert titles[0] == "convergence (rounds)"
        assert "bandwidth (bytes/node/round)" in titles
        # Identical section shapes to the obs-only view: one code path.
        obs_only = MetricsRegistry.from_collector(collector)
        assert registry.section("counters") == obs_only.section("counters")
        _t, _h, rows = registry.section("convergence (rounds)")
        assert ("(executed)", report.executed) in rows
