"""Tests for multi-seed statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.metrics.stats import (
    Stats,
    confidence_half_width,
    mean,
    std,
    summarize,
)


class TestMoments:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_std_known_value(self):
        assert std([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)

    def test_std_singleton_is_zero(self):
        assert std([5]) == 0.0
        assert std([]) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_std_nonnegative(self, samples):
        assert std(samples) >= 0.0


class TestConfidence:
    def test_zero_for_small_samples(self):
        assert confidence_half_width([3.0]) == 0.0

    def test_matches_t_interval(self):
        # n=25, std=1 -> half width = t(0.95, 24) / 5 ≈ 0.342
        samples = [0.0] * 25
        samples = [i % 2 for i in range(25)]  # mean .48, std ~.51
        half = confidence_half_width(samples)
        assert 0.1 < half < 0.3

    def test_shrinks_with_samples(self):
        narrow = confidence_half_width([1, 2] * 20)
        wide = confidence_half_width([1, 2] * 2)
        assert narrow < wide


class TestSummarize:
    def test_basic(self):
        stats = summarize([4, 6, 8])
        assert stats.mean == 6.0
        assert stats.n == 3
        assert stats.failures == 0

    def test_none_counts_as_failure(self):
        stats = summarize([4, None, 8, None])
        assert stats.n == 2
        assert stats.failures == 2
        assert stats.mean == 6.0

    def test_all_failures(self):
        stats = summarize([None, None])
        assert stats.n == 0
        assert stats.failures == 2
        assert math.isnan(stats.mean)

    def test_str_format(self):
        assert "±" in str(summarize([1.0, 2.0]))
        assert "n/a" == str(summarize([None]))
        assert "failed" in str(summarize([1.0, None]))

    def test_stats_frozen(self):
        stats = Stats(mean=1.0, std=0.0, ci90=0.0, n=1)
        with pytest.raises(AttributeError):
            stats.mean = 2.0  # type: ignore[misc]
