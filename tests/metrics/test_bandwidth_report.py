"""Tests for bandwidth extraction and table rendering."""

from __future__ import annotations

from repro.metrics.bandwidth import layer_breakdown, per_node_series, total_split
from repro.metrics.report import render_series, render_table
from repro.sim.config import TransportCosts
from repro.sim.transport import Transport


def loaded_transport():
    transport = Transport(TransportCosts(header_bytes=10, descriptor_bytes=0))
    transport.begin_round(0)
    transport.record_message("core", 0)          # 10 bytes
    transport.record_message("peer_sampling", 0)  # 10 bytes
    transport.begin_round(1)
    transport.record_exchange("core", 0, 0)       # 20 bytes
    transport.record_message("uo1", 0)            # 10 bytes
    return transport


class TestBandwidth:
    def test_per_node_series(self):
        transport = loaded_transport()
        assert per_node_series(transport, "core", 2, 10) == [1.0, 2.0]

    def test_per_node_zero_population(self):
        assert per_node_series(loaded_transport(), "core", 2, 0) == [0.0, 0.0]

    def test_total_split(self):
        split = total_split(loaded_transport(), 2, 1)
        # Baseline = core + peer sampling; overhead = the four assembly
        # sub-procedures (here only uo1 carries traffic).
        assert split["baseline"] == [20.0, 20.0]
        assert split["overhead"] == [0.0, 10.0]

    def test_layer_breakdown_contains_all_layers(self):
        breakdown = layer_breakdown(loaded_transport(), 2, 1)
        assert "core" in breakdown
        assert "peer_sampling" in breakdown
        assert "port_connection" in breakdown  # zero series still present
        assert breakdown["port_connection"] == [0.0, 0.0]


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["x", "value"], [(1, 10), (200, 3)])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows same width.
        assert len({len(line) for line in lines}) == 1

    def test_render_table_title(self):
        text = render_table(["a"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_render_series(self):
        text = render_series("rounds", [100, 200], [5, 6], x_label="nodes")
        assert "nodes" in text
        assert "rounds" in text
        assert "200" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
