"""Stateful fuzzing of the deployment lifecycle.

A hypothesis rule-based state machine drives a live deployment through
arbitrary interleavings of the operations a real operator would perform —
run rounds, crash nodes, revive them, add spares, rebalance, reconfigure —
and checks the framework's global invariants after every step:

- the role map always covers exactly the assigned population, with
  contiguous ranks per component;
- every view respects its capacity bound;
- no protocol ever holds its own node as a neighbour;
- the engine keeps executing (no operation sequence wedges a round);
- after churn stops, the system always re-converges.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import Runtime
from repro.core.reconfigure import reconfigure
from repro.core.roles import SPARE_COMPONENT
from repro.dsl import TopologyBuilder


def build_assembly(flavor: str):
    builder = TopologyBuilder("Fuzz")
    if flavor == "pair":
        builder.component("ring", "ring", size=12).port("gate", "lowest_id")
        builder.component("cell", "clique", size=6).port("gate", "lowest_id")
        builder.link(("ring", "gate"), ("cell", "gate"))
    else:
        builder.component("hub_comp", "star", size=8).port("hub", "hub")
        builder.component("pool", "random", size=10, min_degree=2).port(
            "up", "lowest_id"
        )
        builder.link(("hub_comp", "hub"), ("pool", "up"))
    return builder.build()


class DeploymentLifecycle(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def deploy(self, seed):
        self.deployment = Runtime(build_assembly("pair"), seed=seed).deploy(22)
        self.flavor = "pair"

    # -- operations -------------------------------------------------------------

    @rule(rounds=st.integers(1, 5))
    def run_rounds(self, rounds):
        self.deployment.run(rounds)

    @rule(index=st.integers(0, 200))
    def crash_a_node(self, index):
        alive = self.deployment.network.alive_ids()
        if len(alive) <= self.deployment.assembly.min_nodes() + 2:
            return
        self.deployment.network.kill(alive[index % len(alive)])

    @rule(index=st.integers(0, 200))
    def revive_a_node(self, index):
        dead = [
            node_id
            for node_id in self.deployment.network.node_ids()
            if not self.deployment.network.is_alive(node_id)
        ]
        if dead:
            self.deployment.network.revive(dead[index % len(dead)])

    @rule()
    def add_spare(self):
        if self.deployment.network.size() > 40:
            return
        node = self.deployment.network.create_node()
        self.deployment.provisioner()(self.deployment.network, node)

    @rule()
    def rebalance(self):
        self.deployment.rebalance()

    @rule()
    def reconfigure_to_other_flavor(self):
        self.flavor = "star" if self.flavor == "pair" else "pair"
        reconfigure(self.deployment, build_assembly(self.flavor))

    # -- invariants -----------------------------------------------------------------

    @invariant()
    def roles_partition_their_population(self):
        role_map = self.deployment.role_map
        for component in self.deployment.assembly.components:
            ranks = sorted(rank for _, rank in role_map.members(component))
            assert ranks == list(range(len(ranks))), (
                f"{component}: ranks not contiguous: {ranks}"
            )

    @invariant()
    def views_respect_bounds_and_self_exclusion(self):
        for node in self.deployment.network.nodes():
            ps = node.protocol("peer_sampling")
            assert len(ps.view) <= ps.params.view_size
            assert node.node_id not in ps.view.ids()
            uo1 = node.protocol("uo1")
            assert len(uo1.view) <= uo1.params.view_size
            assert node.node_id not in uo1.view.ids()
            core = node.protocol("core")
            assert node.node_id not in core.neighbors()

    @invariant()
    def spare_accounting_consistent(self):
        role_map = self.deployment.role_map
        for node_id, _rank in role_map.members(SPARE_COMPONENT):
            assert role_map.role(node_id).is_spare

    def teardown(self):
        # Whatever happened, a quiet period must restore convergence.
        if not hasattr(self, "deployment"):
            return
        self.deployment.rebalance()
        self.deployment.tracker.layers = ["core", "uo1", "uo2"]
        self.deployment.tracker.reset()
        report = self.deployment.run_until_converged(100)
        assert report.converged, (
            f"post-fuzz healing failed: {report.rounds} "
            f"(flavor {self.flavor}, {self.deployment.network!r})"
        )


DeploymentLifecycle.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
LifecycleTest = DeploymentLifecycle.TestCase
