"""End-to-end scenarios across the whole stack (DSL → runtime → metrics)."""

from __future__ import annotations

import pytest

from repro import Runtime, RuntimeConfig, compile_source, reconfigure, to_source
from repro.core.convergence import core_score
from repro.sim.churn import CatastrophicFailure, RandomChurn


MONGO_DSL = """
topology Mongo {
    nodes 56
    assign proportional
    component router : star(size = 8) { port hub : hub }
    component shard0 : clique(size = 12) { port head : lowest_id }
    component shard1 : clique(size = 12) { port head : lowest_id }
    component shard2 : clique(size = 12) { port head : lowest_id }
    component shard3 : clique(size = 12) { port head : lowest_id }
    link router.hub -- shard0.head
    link router.hub -- shard1.head
    link router.hub -- shard2.head
    link router.hub -- shard3.head
}
"""


class TestDslToDeployment:
    def test_full_pipeline(self):
        assembly = compile_source(MONGO_DSL)
        deployment = Runtime(assembly, seed=1).deploy()
        report = deployment.run_until_converged(80)
        assert report.converged
        # Round-trip through text and redeploy: same convergence profile.
        again = compile_source(to_source(assembly))
        deployment2 = Runtime(again, seed=1).deploy()
        report2 = deployment2.run_until_converged(80)
        assert report.rounds == report2.rounds

    def test_hub_links_all_shards(self):
        assembly = compile_source(MONGO_DSL)
        deployment = Runtime(assembly, seed=2).deploy()
        deployment.run_until_converged(80)
        hub = deployment.role_map.members("router")[0][0]
        connection = deployment.network.node(hub).protocol("port_connection")
        remote_managers = set(connection.neighbors())
        heads = {
            min(deployment.role_map.member_ids(f"shard{i}")) for i in range(4)
        }
        assert remote_managers == heads


class TestChurnIntegration:
    def test_converges_under_continuous_churn(self):
        assembly = compile_source(MONGO_DSL)
        deployment = Runtime(assembly, seed=3).deploy()
        churn = RandomChurn(
            deployment.streams.fork("churn").stream("crash"),
            crash_rate=0.005,
            join_count=1,
            provisioner=deployment.provisioner(),
            min_population=40,
        )
        deployment.engine.add_control(churn)
        deployment.tracker.layers = ["core", "uo1", "uo2"]
        deployment.tracker.reset()
        report = deployment.run_until_converged(100)
        assert report.converged, report.rounds

    def test_recovery_after_catastrophe(self):
        assembly = compile_source(MONGO_DSL)
        deployment = Runtime(assembly, seed=4).deploy(70)  # 14 spares
        deployment.run_until_converged(80)
        kill = CatastrophicFailure(
            deployment.streams.fork("kill").stream("k"),
            at_round=deployment.engine.round,
            fraction=0.4,
        )
        deployment.engine.add_control(kill)
        deployment.run(1)
        deployment.rebalance()
        damaged = core_score(
            deployment.network, deployment.role_map, deployment.assembly
        )
        deployment.run(40)
        healed = core_score(
            deployment.network, deployment.role_map, deployment.assembly
        )
        assert healed == 1.0
        assert healed >= damaged

    def test_dead_manager_link_heals(self):
        assembly = compile_source(MONGO_DSL)
        deployment = Runtime(assembly, seed=5).deploy()
        deployment.run_until_converged(80)
        # Kill shard0's head (its lowest id member).
        head = min(deployment.role_map.member_ids("shard0"))
        deployment.network.kill(head)
        deployment.tracker.reset()
        report = deployment.run_until_converged(60)
        assert report.converged
        new_head = min(
            node_id
            for node_id in deployment.role_map.member_ids("shard0")
            if deployment.network.is_alive(node_id)
        )
        hub = deployment.role_map.members("router")[0][0]
        connection = deployment.network.node(hub).protocol("port_connection")
        assert new_head in connection.neighbors()


class TestScaleUpDownIntegration:
    def test_grow_population_with_spares_then_rebalance(self):
        assembly = compile_source(MONGO_DSL)
        deployment = Runtime(assembly, seed=6).deploy()
        deployment.run_until_converged(80)
        provision = deployment.provisioner()
        for _ in range(8):
            node = deployment.network.create_node()
            provision(deployment.network, node)
        deployment.run(5)
        # Kill four router members; rebalance should pull spares in.
        victims = deployment.role_map.member_ids("router")[:4]
        for victim in victims:
            deployment.network.kill(victim)
        deployment.rebalance()
        live_router = [
            node_id
            for node_id in deployment.role_map.member_ids("router")
            if deployment.network.is_alive(node_id)
        ]
        assert len(live_router) == 8
        deployment.tracker.reset()
        assert deployment.run_until_converged(80).converged

    def test_reconfigure_into_bigger_shard_count(self):
        assembly = compile_source(MONGO_DSL)
        deployment = Runtime(assembly, seed=7).deploy()
        deployment.run_until_converged(80)
        bigger = compile_source(
            MONGO_DSL.replace("nodes 56", "nodes 56").replace(
                "component shard3 : clique(size = 12) { port head : lowest_id }",
                "component shard3 : clique(size = 6) { port head : lowest_id }\n"
                "    component shard4 : clique(size = 6) { port head : lowest_id }",
            ).replace(
                "link router.hub -- shard3.head",
                "link router.hub -- shard3.head\n    link router.hub -- shard4.head",
            )
        )
        reconfigure(deployment, bigger)
        report = deployment.run_until_converged(100)
        assert report.converged, report.rounds
        assert deployment.role_map.component_size("shard4") == 6
