"""BackoffPolicy: validation, deterministic jittered delays, exhaustion."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.heal.policy import BackoffPolicy, DEFAULT_POLICY, ESCALATION_POLICY


def test_defaults_are_valid():
    assert DEFAULT_POLICY.max_attempts >= 1
    assert ESCALATION_POLICY.budget >= ESCALATION_POLICY.max_attempts


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_delay": 0},
        {"factor": 0.5},
        {"max_delay": 1, "base_delay": 2},
        {"jitter": -1},
        {"cooldown": -1},
        {"budget": 2, "max_attempts": 3},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        BackoffPolicy(**kwargs)


def test_delay_grows_geometrically_and_caps():
    policy = BackoffPolicy(
        max_attempts=5, base_delay=2, factor=2.0, max_delay=10, jitter=0, budget=8
    )
    rng = random.Random(1)
    delays = [policy.delay(attempt, rng) for attempt in (1, 2, 3, 4, 5)]
    assert delays == [2, 4, 8, 10, 10]  # capped at max_delay


def test_delay_is_one_based():
    with pytest.raises(ConfigurationError):
        DEFAULT_POLICY.delay(0, random.Random(1))


def test_jitter_is_bounded_and_seed_deterministic():
    policy = BackoffPolicy(
        max_attempts=3, base_delay=4, factor=1.0, max_delay=4, jitter=3
    )
    for _ in range(50):
        value = policy.delay(1, random.Random(123))
        assert value == policy.delay(1, random.Random(123))  # same seed, same wait
    draws = {policy.delay(1, random.Random(seed)) for seed in range(40)}
    assert draws <= {4, 5, 6, 7}
    assert len(draws) > 1  # jitter actually spreads


def test_zero_jitter_is_pure_arithmetic():
    policy = BackoffPolicy(jitter=0)
    rng = random.Random(9)
    state = rng.getstate()
    policy.delay(1, rng)
    assert rng.getstate() == state  # no draw consumed


def test_exhausted_threshold():
    policy = BackoffPolicy(max_attempts=2)
    assert not policy.exhausted(0)
    assert not policy.exhausted(1)
    assert policy.exhausted(2)
    assert policy.exhausted(3)


def test_policies_are_frozen():
    with pytest.raises(Exception):
        DEFAULT_POLICY.max_attempts = 99  # type: ignore[misc]
