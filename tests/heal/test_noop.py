"""The no-op path: an armed engine must not perturb a healthy run.

The closed loop's zero-interference contract: attaching the collector,
health monitor, recovery observer, and remediation engine to a healthy
deployment changes *nothing* — no alert fires, no action runs, and the
realized overlay stays byte-identical to a bare, unmanaged run of the same
seed. Verified at the strongest level available: the canonical overlay
digest.
"""

from __future__ import annotations

from repro.faults.scenarios import standard_deployment
from repro.heal.engine import RemediationEngine
from repro.heal.scenarios import _arm
from repro.obs.collector import Collector
from repro.perf.digest import overlay_digest

LAYERS = ("peer_sampling", "uo1", "core", "port_selection", "port_connection")

N_NODES = 48
SEED = 11
# Longer than the stall rule's window, so a healthy run also proves the
# stalled-convergence rule stays quiet under steady state.
EXTRA_ROUNDS = 15


def _bare_digest() -> str:
    deployment = standard_deployment(N_NODES, SEED)
    deployment.run_until_converged(120)
    deployment.run(EXTRA_ROUNDS)
    return overlay_digest(deployment.network, LAYERS)


def _managed_digest():
    collector = Collector()
    deployment = standard_deployment(N_NODES, SEED, collector=collector)
    deployment.run_until_converged(120)
    _, _, monitor = _arm(deployment, collector)
    engine = RemediationEngine.for_deployment(deployment, monitor)
    deployment.run(EXTRA_ROUNDS)
    return overlay_digest(deployment.network, LAYERS), engine, monitor


def test_armed_engine_is_invisible_on_a_healthy_run():
    digest, engine, monitor = _managed_digest()
    assert digest == _bare_digest()  # byte-identical overlay
    assert engine.verdict() == "idle"
    assert engine.timeline() == []
    assert engine.actions_run == 0
    assert monitor.active_alerts() == []
    remediation_kinds = {
        "remediation",
        "remediation_escalated",
        "incident_recovered",
        "incident_unrecoverable",
    }
    assert not [
        event
        for event in monitor.collector.events
        if event.kind in remediation_kinds
    ]
