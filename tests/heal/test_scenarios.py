"""Closed-loop scenarios: the acceptance differential, matrix, and CLI.

The centerpiece is the managed-vs-unmanaged matrix over every corruption
mode: the managed run must re-converge (closed-loop recovery) while the
unmanaged baseline either never stabilizes within the budget or takes at
least twice as long — the quantitative case that the remediation engine
earns its keep.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.heal.harness import corruption_modes
from repro.heal.scenarios import (
    format_heal_matrix,
    format_heal_scenario,
    run_heal_matrix,
    run_heal_scenario,
    run_partition_churn,
    write_heal_bench,
)

BUDGET = 60


@pytest.fixture(scope="module")
def matrix():
    return run_heal_matrix(n_nodes=64, seed=7, budget=BUDGET)


def test_unknown_mode_is_rejected():
    with pytest.raises(ConfigurationError):
        run_heal_scenario("meteor-strike")


@pytest.mark.slow
def test_matrix_covers_every_mode(matrix):
    assert [entry["mode"] for entry in matrix] == corruption_modes()
    for entry in matrix:
        assert entry["managed"].managed
        assert not entry["unmanaged"].managed
        assert entry["managed"].mode == entry["mode"]


@pytest.mark.slow
def test_closed_loop_recovery_differential(matrix):
    """The acceptance criterion: for every corruption mode the managed run
    converges and the unmanaged baseline fails or is >= 2x slower."""
    for entry in matrix:
        managed, unmanaged = entry["managed"], entry["unmanaged"]
        assert managed.verdict == "recovered", entry["mode"]
        assert managed.stabilize_rounds is not None
        assert managed.remediation["actions_run"] > 0
        if unmanaged.stabilize_rounds is not None:
            assert (
                unmanaged.stabilize_rounds >= 2 * managed.stabilize_rounds
            ), entry["mode"]


@pytest.mark.slow
def test_managed_runs_record_remediation_timelines(matrix):
    for entry in matrix:
        timeline = entry["managed"].timeline
        assert timeline, entry["mode"]
        kinds = {item["kind"] for item in timeline}
        assert "incident_opened" in kinds
        assert "remediation" in kinds
        json.dumps(timeline)  # JSONL-ready
        assert entry["unmanaged"].timeline == []


@pytest.mark.slow
def test_bench_writer_lands_stabilization_numbers(matrix, tmp_path):
    path = write_heal_bench(matrix, json_path=str(tmp_path / "BENCH_heal.json"))
    payload = json.loads((tmp_path / "BENCH_heal.json").read_text())
    assert path.endswith("BENCH_heal.json")
    assert payload["benchmark"] == "heal"
    assert [entry["mode"] for entry in payload["entries"]] == corruption_modes()
    for entry in payload["entries"]:
        assert entry["managed"]["verdict"] == "recovered"
        assert entry["managed"]["stabilize_rounds"] is not None


@pytest.mark.slow
def test_formatters_render_the_story(matrix):
    table = format_heal_matrix(matrix)
    for mode in corruption_modes():
        assert mode in table
    report = format_heal_scenario(matrix[0]["managed"])
    assert "time-to-stabilize" in report
    assert "verdict: recovered" in report


def test_partition_churn_end_to_end():
    result = run_partition_churn(n_nodes=64, seed=7)
    assert result.verdict == "recovered"
    assert result.stabilize_rounds is not None
    assert result.stabilize_rounds <= result.budget
    rules = {item["rule"] for item in result.timeline}
    assert "churn_spike" in rules  # the kill wave was seen and acted on
    # The rendezvous re-seed defers while the cut is active (acting across
    # an active partition is futile), then resolves once it heals.
    outcomes = [
        item["outcome"]
        for item in result.timeline
        if item.get("action") == "rendezvous_reseed"
    ]
    assert "deferred" in outcomes
    assert outcomes[-1] in ("applied", "noop")


def test_scenario_is_deterministic_per_seed():
    def once():
        result = run_heal_scenario("stale", budget=BUDGET)
        return result.stabilize_rounds, result.corruption, result.timeline

    assert once() == once()


def test_cli_heal_scenario(tmp_path, capsys):
    from repro.cli import main

    timeline_path = tmp_path / "timeline.jsonl"
    code = main(
        [
            "heal",
            "--scenario",
            "stale",
            "--budget",
            str(BUDGET),
            "--timeline",
            str(timeline_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "verdict: recovered" in out
    entries = [
        json.loads(line)
        for line in timeline_path.read_text().splitlines()
    ]
    assert entries
    assert all(entry["mode"] == "stale" for entry in entries)


@pytest.mark.slow
def test_cli_heal_unmanaged_flavor(capsys):
    from repro.cli import main

    code = main(
        ["heal", "--scenario", "segregated", "--unmanaged", "--budget", "40"]
    )
    out = capsys.readouterr().out
    assert "unmanaged" in out
    assert code == 0  # no managed runs demanded: nothing to fail on
