"""Action primitives: view invariants under remediation, component detection.

The property-based half drives :func:`purge_dead` / :func:`seed_view` over
arbitrary view states and shows every remediation primitive preserves the
:class:`PartialView` invariants (capacity, uniqueness, tombstone
semantics); the unit half pins :func:`overlay_components` on hand-built
knowledge graphs.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.gossip.descriptors import Descriptor  # noqa: E402
from repro.gossip.views import PartialView  # noqa: E402
from repro.heal.actions import (  # noqa: E402
    overlay_components,
    purge_dead,
    seed_view,
)

node_ids = st.integers(min_value=0, max_value=15)
ages = st.integers(min_value=0, max_value=8)
descriptors = st.builds(Descriptor, node_id=node_ids, age=ages)
populations = st.lists(descriptors, max_size=12)
id_lists = st.lists(node_ids, max_size=8)


def build_view(contents, capacity=8) -> PartialView:
    view = PartialView(capacity)
    view.merge(contents)
    return view


def assert_invariants(view: PartialView) -> None:
    entries = view.descriptors()
    assert len(entries) <= view.capacity
    ids = [d.node_id for d in entries]
    assert len(ids) == len(set(ids))  # one entry per id
    assert sorted(ids) == sorted(view.ids())  # index consistency


@given(populations, id_lists)
def test_purge_dead_preserves_invariants_and_removes(contents, dead):
    view = build_view(contents)
    purged = purge_dead(view, dead)
    assert_invariants(view)
    assert purged >= 0
    for dead_id in dead:
        assert dead_id not in view


@given(populations, id_lists)
def test_purge_dead_is_idempotent(contents, dead):
    view = build_view(contents)
    purge_dead(view, dead)
    assert purge_dead(view, dead) == 0  # nothing left to purge


@given(populations, id_lists, ages)
def test_purge_dead_tombstones_block_stale_resurrection(contents, dead, age):
    view = build_view(contents)
    purge_dead(view, dead)
    # A stale (aged) third-party copy must not resurrect a purged entry.
    view.merge([Descriptor(d, age=age + 1) for d in dead])
    for dead_id in dead:
        assert dead_id not in view


@given(populations, id_lists)
def test_seed_view_preserves_invariants_and_bounds(contents, contacts):
    view = build_view(contents)
    before = set(view.ids())
    seeded = seed_view(view, contacts)
    assert_invariants(view)
    assert 0 <= seeded <= len(contacts)
    # Seeding introduces only the requested contacts (eviction may drop
    # old entries, never invent new ones).
    assert set(view.ids()) <= before | set(contacts)


@given(populations, id_lists)
def test_seed_view_lifts_tombstones(contents, contacts):
    view = build_view(contents)
    purge_dead(view, contacts)
    seed_view(view, contacts)
    # Age-0 contact seeding is first-hand evidence of life: unless evicted
    # by capacity pressure from later contacts, the id is back.
    if len(set(contacts)) <= view.capacity:
        for contact in contacts:
            assert contact in view


# -- overlay_components on hand-built knowledge graphs -------------------------


class _FakeProtocol:
    def __init__(self, neighbor_ids):
        self._neighbors = list(neighbor_ids)

    def neighbors(self):
        return list(self._neighbors)


class _FakeNode:
    def __init__(self, node_id, neighbor_ids):
        self.node_id = node_id
        self._protocol = _FakeProtocol(neighbor_ids)

    def has_protocol(self, layer):
        return True

    def protocol(self, layer):
        return self._protocol


class _FakeNetwork:
    def __init__(self, adjacency, dead=()):
        self._nodes = {
            node_id: _FakeNode(node_id, neighbors)
            for node_id, neighbors in adjacency.items()
        }
        self._dead = set(dead)

    def alive_ids(self):
        return sorted(set(self._nodes) - self._dead)

    def node(self, node_id):
        return self._nodes[node_id]

    def is_alive(self, node_id):
        return node_id in self._nodes and node_id not in self._dead


def test_overlay_components_detects_segregation():
    network = _FakeNetwork(
        {0: [1], 1: [0], 2: [3], 3: [2]},
    )
    assert overlay_components(network) == [[0, 1], [2, 3]]


def test_overlay_components_unions_directed_edges():
    # 2 references 1 but not vice versa: knowledge is undirected (either
    # end can initiate an exchange), so all four form one component.
    network = _FakeNetwork({0: [1], 1: [0], 2: [1], 3: [2]})
    assert overlay_components(network) == [[0, 1, 2, 3]]


def test_overlay_components_ignores_dead_and_forged_references():
    network = _FakeNetwork(
        {0: [1, 99, 10_000_000], 1: [0], 2: [99]},
        dead=[99],
    )
    # 99 is dead and 10_000_000 unknown: neither bridges 2 to the others.
    assert overlay_components(network) == [[0, 1], [2]]
