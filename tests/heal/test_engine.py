"""RemediationEngine decision logic: lifecycle, retries, escalation.

Driven with scripted actions and a fake monitor so every branch of the
retry accounting is pinned without simulating an overlay: outcomes burn
attempts/budget per the three-way protocol, exhaustion climbs the
escalation ladder to ``unrecoverable``, and cooldown hysteresis resumes a
reopened incident at its old level.
"""

from __future__ import annotations

import random

from repro.heal.actions import RemediationAction
from repro.heal.engine import UNRECOVERABLE_LEVEL, RemediationEngine
from repro.heal.policy import BackoffPolicy
from repro.obs import events as _events
from repro.obs.collector import Collector
from repro.obs.health import Alert


class ScriptedAction(RemediationAction):
    """Returns a scripted outcome per call (then keeps applying)."""

    def __init__(self, name, policy, outcomes=()):
        self.name = name
        self.policy = policy
        self.outcomes = list(outcomes)
        self.calls = 0

    def apply(self, deployment, alert, round_index, rng):
        self.calls += 1
        outcome = self.outcomes.pop(0) if self.outcomes else "applied"
        return {"outcome": outcome}


class FakeMonitor:
    """Just enough HealthMonitor surface for the engine: subscribe + fire."""

    def __init__(self):
        self.collector = Collector()
        self.listeners = []

    def subscribe(self, listener):
        self.listeners.append(listener)

    def fire(self, rule, round_index, severity="critical"):
        alert = Alert(rule=rule, severity=severity, round_fired=round_index)
        for listener in self.listeners:
            listener(alert, True, round_index)
        return alert

    def clear(self, alert, round_index):
        alert.round_cleared = round_index
        for listener in self.listeners:
            listener(alert, False, round_index)


def make_engine(actions, escalation=None):
    monitor = FakeMonitor()
    engine = RemediationEngine(
        deployment=None,
        monitor=monitor,
        rng=random.Random(42),
        actions=actions,
        escalation=escalation
        or ScriptedAction(
            "escalate",
            BackoffPolicy(max_attempts=2, jitter=0, base_delay=2, budget=8),
        ),
    )
    return engine, monitor


def drain(engine, start, stop):
    for round_index in range(start, stop):
        engine.act(None, round_index)


NO_JITTER = BackoffPolicy(
    max_attempts=3, base_delay=2, factor=2.0, max_delay=8, jitter=0, budget=8
)


def test_lifecycle_open_act_recover():
    action = ScriptedAction("fix", NO_JITTER)
    engine, monitor = make_engine({"rule_a": action})
    assert engine.verdict() == "idle"
    alert = monitor.fire("rule_a", 5)
    assert engine.verdict() == "active"
    engine.act(None, 5)
    assert action.calls == 1
    incident = engine.active_incidents()[0]
    assert incident.attempts == 1
    assert incident.actions_applied == 1
    assert incident.next_round == 5 + NO_JITTER.delay(1, random.Random(0))
    engine.act(None, 6)  # inside the backoff window: no call
    assert action.calls == 1
    monitor.clear(alert, 7)
    assert engine.verdict() == "recovered"
    assert engine.incidents[0].status == "recovered"
    assert engine.incidents[0].closed_round == 7
    kinds = [event.kind for event in monitor.collector.events]
    assert _events.EVENT_REMEDIATION in kinds
    assert _events.EVENT_INCIDENT_RECOVERED in kinds


def test_refire_while_active_is_ignored():
    action = ScriptedAction("fix", NO_JITTER)
    engine, monitor = make_engine({"rule_a": action})
    monitor.fire("rule_a", 5)
    monitor.fire("rule_a", 6)
    assert len(engine.incidents) == 1


def test_noop_burns_attempts_and_escalates_to_unrecoverable():
    # Every local attempt noops: the incident must still climb the ladder
    # in bounded time and terminate as unrecoverable.
    policy = BackoffPolicy(max_attempts=2, base_delay=1, jitter=0, budget=8)
    action = ScriptedAction("fix", policy, outcomes=["noop"] * 10)
    escalation = ScriptedAction(
        "escalate",
        BackoffPolicy(max_attempts=1, base_delay=1, jitter=0, budget=8),
        outcomes=["noop"] * 10,
    )
    engine, monitor = make_engine({"rule_a": action}, escalation=escalation)
    monitor.fire("rule_a", 0)
    drain(engine, 0, 30)
    assert engine.verdict() == "unrecoverable"
    incident = engine.incidents[0]
    assert incident.level == UNRECOVERABLE_LEVEL
    assert incident.actions_applied == 0  # noops never burned budget
    assert escalation.calls == 1
    kinds = [event.kind for event in monitor.collector.events]
    assert _events.EVENT_REMEDIATION_ESCALATED in kinds
    assert _events.EVENT_INCIDENT_UNRECOVERABLE in kinds
    # A terminal incident acts no further.
    calls = action.calls + escalation.calls
    drain(engine, 30, 40)
    assert action.calls + escalation.calls == calls


def test_deferred_retries_next_round_for_free():
    action = ScriptedAction(
        "fix", NO_JITTER, outcomes=["deferred", "deferred", "applied"]
    )
    engine, monitor = make_engine({"rule_a": action})
    monitor.fire("rule_a", 3)
    engine.act(None, 3)
    incident = engine.active_incidents()[0]
    assert incident.attempts == 0  # deferred burns nothing
    assert incident.next_round == 4
    engine.act(None, 4)
    assert incident.attempts == 0
    engine.act(None, 5)
    assert action.calls == 3
    assert incident.attempts == 1
    assert incident.actions_applied == 1


def test_budget_exhaustion_escalates_before_attempts_do():
    # Level 0 applies twice (its max), escalating with actions_applied=2;
    # the level-1 policy's budget of 3 then trips after a single applied
    # escalation action, even though its attempt count is far from maxed.
    local = ScriptedAction(
        "fix", BackoffPolicy(max_attempts=2, base_delay=1, jitter=0, budget=8)
    )
    escalation = ScriptedAction(
        "escalate",
        BackoffPolicy(max_attempts=3, base_delay=1, jitter=0, budget=3),
    )
    engine, monitor = make_engine({"rule_a": local}, escalation=escalation)
    monitor.fire("rule_a", 0)
    drain(engine, 0, 20)
    assert escalation.calls == 1
    incident = engine.incidents[0]
    assert incident.status == "unrecoverable"
    assert incident.actions_applied == 3


def test_cooldown_hysteresis_resumes_escalation_level():
    policy = BackoffPolicy(
        max_attempts=1, base_delay=1, jitter=0, cooldown=5, budget=8
    )
    action = ScriptedAction("fix", policy)
    engine, monitor = make_engine({"rule_a": action})
    alert = monitor.fire("rule_a", 0)
    engine.act(None, 0)  # one applied attempt exhausts level 0
    drain(engine, 1, 3)
    assert engine.active_incidents()[0].level == 1
    monitor.clear(alert, 4)
    # Re-fire inside the cooldown window: same degradation, resume at L1.
    monitor.fire("rule_a", 7)
    reopened = engine.active_incidents()[0]
    assert reopened.reopened
    assert reopened.level == 1
    # Re-fire past the window starts a fresh incident at level 0.
    monitor.clear(reopened.alert, 8)
    engine._last_closed["rule_a"] = (8, 1)
    monitor.fire("rule_a", 20)
    assert not engine.active_incidents()[0].reopened
    assert engine.active_incidents()[0].level == 0


def test_unmapped_rule_waits_without_crashing():
    engine, monitor = make_engine({})
    alert = monitor.fire("mystery_rule", 2)
    engine.act(None, 2)
    incident = engine.active_incidents()[0]
    assert incident.attempts == 0
    assert incident.next_round > 2
    monitor.clear(alert, 9)
    assert engine.verdict() == "recovered"


def test_timeline_and_summary_are_jsonable():
    import json

    action = ScriptedAction("fix", NO_JITTER)
    engine, monitor = make_engine({"rule_a": action})
    alert = monitor.fire("rule_a", 1)
    engine.act(None, 1)
    monitor.clear(alert, 3)
    timeline = engine.timeline()
    assert [entry["kind"] for entry in timeline] == [
        "incident_opened",
        "remediation",
        "incident_closed",
    ]
    json.dumps(timeline)
    summary = engine.summary()
    assert summary["verdict"] == "recovered"
    assert summary["incidents_total"] == 1
    json.dumps(summary)
