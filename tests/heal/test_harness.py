"""Corruption generators: determinism, degree scaling, injected damage."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.faults.scenarios import standard_deployment
from repro.heal.actions import overlay_components
from repro.heal.harness import (
    CORRUPTIONS,
    FORGED_ID_BASE,
    corrupt_poisoned,
    corrupt_segregated,
    corrupt_stale,
    corruption_modes,
)


def converged(n_nodes=48, seed=13):
    deployment = standard_deployment(n_nodes, seed)
    deployment.run_until_converged(120)
    return deployment


def test_registry_and_modes_agree():
    assert corruption_modes() == sorted(CORRUPTIONS)
    assert set(corruption_modes()) == {"segregated", "poisoned", "stale"}


@pytest.mark.parametrize("mode", sorted(CORRUPTIONS))
def test_degree_is_validated(mode):
    deployment = converged()
    with pytest.raises(ConfigurationError):
        CORRUPTIONS[mode](deployment, random.Random(1), degree=1.5)


def test_segregated_splits_the_knowledge_graph():
    deployment = converged()
    assert len(overlay_components(deployment.network)) == 1
    info = corrupt_segregated(deployment, random.Random(5), degree=1.0)
    assert info["entries_dropped"] > 0
    assert sum(info["groups"]) == deployment.network.alive_count()
    assert len(overlay_components(deployment.network)) >= 2


def test_poisoned_eclipses_with_forged_descriptors():
    deployment = converged()
    info = corrupt_poisoned(deployment, random.Random(5), degree=1.0)
    assert info["forged"] > 0
    assert len(overlay_components(deployment.network)) >= 2
    # The forged sybils really are planted: some live view references a
    # node id beyond the population.
    planted = [
        descriptor.node_id
        for node_id in deployment.network.alive_ids()
        for descriptor in deployment.network.node(node_id)
        .protocol("peer_sampling")
        .view.descriptors()
        if descriptor.node_id >= FORGED_ID_BASE
    ]
    assert planted
    # No view was left empty (the eclipse must not trigger the oracle).
    for node_id in deployment.network.alive_ids():
        node = deployment.network.node(node_id)
        assert len(node.protocol("peer_sampling").view) > 0


def test_stale_kills_floods_and_rolls_back():
    deployment = converged()
    population = deployment.network.alive_count()
    info = corrupt_stale(deployment, random.Random(5), degree=1.0)
    assert info["killed"] == int(population * 0.3)
    assert deployment.network.alive_count() == population - info["killed"]
    assert info["corpses_flooded"] > 0
    assert info["entries_dropped"] > 0
    # Survivors' views reference the freshly killed (age-0 corpses).
    victims = set()
    for node_id in deployment.network.alive_ids():
        view = deployment.network.node(node_id).protocol("peer_sampling").view
        for descriptor in view.descriptors():
            if not deployment.network.is_alive(descriptor.node_id):
                victims.add(descriptor.node_id)
    assert len(victims) > 0


def test_degree_zero_changes_nothing():
    deployment = converged()
    info = corrupt_segregated(deployment, random.Random(5), degree=0.0)
    assert info["entries_dropped"] == 0
    assert len(overlay_components(deployment.network)) == 1


@pytest.mark.parametrize("mode", sorted(CORRUPTIONS))
def test_corruption_is_a_pure_function_of_seed(mode):
    def run_once():
        deployment = converged()
        rng = deployment.streams.fork("heal").stream("corruption", mode)
        info = CORRUPTIONS[mode](deployment, rng, degree=0.8)
        views = {
            node_id: sorted(
                deployment.network.node(node_id)
                .protocol("peer_sampling")
                .view.ids()
            )
            for node_id in deployment.network.alive_ids()
        }
        return info, views

    assert run_once() == run_once()
