"""Tests for the application messaging facade."""

from __future__ import annotations

import pytest

from repro.app import MessageService
from repro.core import Runtime
from repro.experiments.topologies import star_of_cliques


@pytest.fixture(scope="module")
def service():
    deployment = Runtime(star_of_cliques(4, 12, 8), seed=4).deploy()
    assert deployment.run_until_converged(80).converged
    return MessageService(deployment)


class TestSend:
    def test_successful_delivery(self, service):
        alive = service.deployment.network.alive_ids()
        report = service.send(alive[0], alive[-1])
        assert report.delivered
        assert report.route is not None
        assert report.hops >= 1
        assert report.error == ""

    def test_failed_delivery_reports_error(self, service):
        deployment = service.deployment
        victim = deployment.role_map.member_ids("shard2")[5]
        deployment.network.kill(victim)
        try:
            report = service.send(deployment.network.alive_ids()[0], victim)
            assert not report.delivered
            assert report.error
            assert report.hops is None
        finally:
            deployment.network.revive(victim)


class TestCall:
    def test_call_own_component_port(self, service):
        deployment = service.deployment
        member = deployment.role_map.member_ids("shard0")[3]
        report = service.call(member, "shard0.head")
        assert report.delivered
        assert report.destination == min(deployment.role_map.member_ids("shard0"))

    def test_call_remote_port(self, service):
        deployment = service.deployment
        member = deployment.role_map.member_ids("shard1")[0]
        report = service.call(member, "router.hub")
        assert report.delivered
        hub = deployment.role_map.members("router")[0][0]
        assert report.destination == hub

    def test_call_accepts_portref(self, service):
        from repro.core.link import PortRef

        deployment = service.deployment
        member = deployment.role_map.member_ids("shard1")[0]
        report = service.call(member, PortRef("shard3", "head"))
        assert report.delivered

    def test_call_dead_manager_after_healing(self, service):
        deployment = service.deployment
        head = min(deployment.role_map.member_ids("shard3"))
        deployment.network.kill(head)
        try:
            # Give the self-stabilizing layers a healing window: port
            # selection must re-elect and port connection re-bind before a
            # call can route over the link again.
            deployment.run(10)
            member = deployment.role_map.member_ids("shard0")[0]
            report = service.call(member, "shard3.head")
            assert report.delivered, report.error
            assert report.destination != head
        finally:
            deployment.network.revive(head)
            deployment.run(5)  # reabsorb the node for later tests


class TestTraffic:
    def test_random_traffic_all_delivered(self, service):
        stats = service.random_traffic(60, seed=7)
        assert stats.attempted == 60
        assert stats.delivered == 60
        assert stats.delivery_rate == 1.0
        assert stats.mean_hops >= 1.0
        assert stats.max_hops >= stats.mean_hops

    def test_traffic_deterministic_by_seed(self, service):
        first = service.random_traffic(30, seed=1)
        second = service.random_traffic(30, seed=1)
        assert first == second

    def test_run_traffic_explicit_pairs(self, service):
        alive = service.deployment.network.alive_ids()
        stats = service.run_traffic([(alive[0], alive[1]), (alive[2], alive[3])])
        assert stats.attempted == 2
        assert stats.delivered == 2

    def test_empty_traffic(self, service):
        stats = service.run_traffic([])
        assert stats.attempted == 0
        assert stats.delivery_rate == 1.0
