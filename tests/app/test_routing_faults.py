"""Routing and messaging resilience when overlay knowledge is stale.

A crashed port manager must not crash the application layer: the router
first asks live UO1 peers for a fresher election, and the message service
turns any remaining overlay-state error into a failed
:class:`~repro.app.messaging.DeliveryReport`.
"""

from __future__ import annotations

import pytest

from repro.app.messaging import MessageService
from repro.app.routing import Router
from repro.core import Runtime
from repro.core.layers import LAYER_PORT_SELECTION
from repro.experiments.topologies import ring_of_rings


@pytest.fixture()
def rings():
    deployment = Runtime(ring_of_rings(4, 8), seed=7).deploy()
    assert deployment.run_until_converged(80).converged
    return deployment


def crossing_toward(deployment, src_component, dst_component):
    """The (local, remote) port refs of the direct link between components."""
    for link in deployment.assembly.links_of(src_component):
        local = link.a if link.a.component == src_component else link.b
        remote = link.other(local)
        if remote.component == dst_component:
            return local, remote
    raise AssertionError(f"no link {src_component} -> {dst_component}")


class TestDeadManagerFallback:
    def test_stale_local_belief_heals_through_uo1_peers(self, rings, monkeypatch):
        local, _ = crossing_toward(rings, "ring0", "ring1")
        probe = rings.role_map.member_ids("ring0")[0]
        manager = rings.network.node(probe).protocol(
            LAYER_PORT_SELECTION
        ).manager_of(local.port)
        assert manager is not None
        rings.network.kill(manager)
        # Port managers are anchored to role ranks, so recovery needs the
        # assignment rule re-run (a survivor adopts the vacated rank) plus a
        # few rounds for the new election to spread...
        rings.rebalance()
        rings.run(8)
        src = [
            n for n in rings.role_map.member_ids("ring0") if rings.network.is_alive(n)
        ][0]
        dst = [
            n for n in rings.role_map.member_ids("ring1") if rings.network.is_alive(n)
        ][0]
        selection = rings.network.node(src).protocol(LAYER_PORT_SELECTION)
        assert selection.manager_of(local.port) not in (None, manager)
        # ...then pin the source's own belief back to the dead manager, so
        # the route must go through the UO1 second-opinion lookup.
        monkeypatch.setattr(selection, "manager_of", lambda port: manager)
        route = Router(rings).route(src, dst)
        assert route.path[-1] == dst
        assert manager not in route.path

    def test_unhealed_crash_fails_delivery_without_raising(self, rings):
        src = rings.role_map.member_ids("ring0")[0]
        dst = rings.role_map.member_ids("ring1")[0]
        local, _ = crossing_toward(rings, "ring0", "ring1")
        manager = rings.network.node(src).protocol(LAYER_PORT_SELECTION).manager_of(
            local.port
        )
        if dst == manager:
            dst = rings.role_map.member_ids("ring1")[1]
        rings.network.kill(manager)
        # No rounds run: every peer still believes in the dead manager, so
        # the fallback finds nothing — but the app layer must get a report,
        # not an exception.
        report = MessageService(rings).send(src, dst)
        if not report.delivered:
            assert report.error
        else:
            # The sampled seed may route around the dead manager (e.g. the
            # election already pointed elsewhere); either way, no raise.
            assert report.route.path[-1] == dst

    def test_dead_destination_is_a_failed_report(self, rings):
        src = rings.role_map.member_ids("ring0")[0]
        dst = rings.role_map.member_ids("ring2")[3]
        rings.network.kill(dst)
        report = MessageService(rings).send(src, dst)
        assert not report.delivered
        assert "alive" in report.error
