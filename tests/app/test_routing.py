"""Tests for hop-by-hop routing over realized assemblies."""

from __future__ import annotations

import pytest

from repro.app.routing import Route, Router, RoutingError
from repro.core import Runtime
from repro.experiments.topologies import (
    iot_composite,
    ring_of_rings,
    star_of_cliques,
)


@pytest.fixture(scope="module")
def mongo():
    deployment = Runtime(star_of_cliques(4, 12, 8), seed=3).deploy()
    assert deployment.run_until_converged(80).converged
    return deployment


@pytest.fixture(scope="module")
def rings():
    deployment = Runtime(ring_of_rings(6, 12), seed=5).deploy()
    assert deployment.run_until_converged(80).converged
    return deployment


class TestRouteObject:
    def test_empty_route(self):
        route = Route(path=[5], mechanisms=[])
        assert route.hops == 0
        assert route.link_crossings == 0

    def test_extend(self):
        route = Route(path=[1], mechanisms=[])
        route.extend(2, "greedy")
        route.extend(3, "link")
        assert route.hops == 2
        assert route.link_crossings == 1


class TestIntraComponent:
    def test_self_route(self, mongo):
        router = Router(mongo)
        node = mongo.role_map.member_ids("shard0")[0]
        route = router.route(node, node)
        assert route.hops == 0

    def test_clique_is_one_hop(self, mongo):
        router = Router(mongo)
        members = mongo.role_map.member_ids("shard1")
        route = router.route(members[0], members[-1])
        assert route.hops == 1
        assert route.mechanisms == ["greedy"]

    def test_ring_greedy_takes_shortest_arc(self, rings):
        router = Router(rings)
        members = rings.role_map.members("ring0")
        by_rank = {rank: node_id for node_id, rank in members}
        route = router.route(by_rank[0], by_rank[3])
        assert route.hops == 3  # 0 -> 1 -> 2 -> 3
        route_back = router.route(by_rank[0], by_rank[9])
        assert route_back.hops == 3  # wraps: 0 -> 11 -> 10 -> 9

    def test_path_endpoints(self, rings):
        router = Router(rings)
        members = rings.role_map.member_ids("ring2")
        route = router.route(members[1], members[5])
        assert route.path[0] == members[1]
        assert route.path[-1] == members[5]


class TestInterComponent:
    def test_routes_via_hub_links(self, mongo):
        router = Router(mongo)
        src = mongo.role_map.member_ids("shard0")[4]
        dst = mongo.role_map.member_ids("shard3")[7]
        route = router.route(src, dst)
        assert route.path[-1] == dst
        # shard0 -> router -> shard3: two link crossings.
        assert route.link_crossings == 2
        hub_members = set(mongo.role_map.member_ids("router"))
        assert hub_members & set(route.path)

    def test_super_ring_multi_component(self, rings):
        router = Router(rings)
        src = rings.role_map.member_ids("ring0")[0]
        dst = rings.role_map.member_ids("ring3")[0]
        route = router.route(src, dst)
        assert route.path[-1] == dst
        assert route.link_crossings == 3  # ring0 -> ring1 -> ring2 -> ring3

    def test_dead_endpoint_rejected(self, mongo):
        router = Router(mongo)
        src = mongo.role_map.member_ids("shard0")[0]
        dead = mongo.role_map.member_ids("shard1")[2]
        mongo.network.kill(dead)
        try:
            with pytest.raises(RoutingError):
                router.route(src, dead)
        finally:
            mongo.network.revive(dead)

    def test_hop_budget_enforced(self, rings):
        router = Router(rings, max_hops=1)
        src = rings.role_map.member_ids("ring0")[0]
        dst = rings.role_map.member_ids("ring0")[5]
        with pytest.raises(RoutingError):
            router.route(src, dst)


class TestOpportunisticAndFlood:
    @pytest.fixture(scope="class")
    def iot(self):
        deployment = Runtime(iot_composite(), seed=9).deploy()
        assert deployment.run_until_converged(100).converged
        return deployment

    def test_unlinked_components_use_uo2(self, iot):
        # sensors and gateway share no direct link *path end* — actually the
        # pipeline links them transitively; force the opportunistic branch
        # by routing between sensors and gateway with the link path removed.
        router = Router(iot)
        src = iot.role_map.member_ids("sensors")[0]
        dst = iot.role_map.member_ids("gateway")[0]
        route = router.route(src, dst)
        assert route.path[-1] == dst

    def test_random_component_uses_flooding(self, iot):
        router = Router(iot)
        members = iot.role_map.member_ids("sensors")
        route = router.route(members[0], members[-1])
        assert route.path[-1] == members[-1]

    def test_flooding_can_be_disabled(self, iot):
        router = Router(iot, allow_flooding=False)
        members = iot.role_map.member_ids("sensors")
        # Either the destination happens to be a direct neighbour, or the
        # gradient-free shape must raise.
        try:
            route = router.route(members[0], members[-1])
            assert route.hops == 1
        except RoutingError:
            pass
