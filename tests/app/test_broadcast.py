"""Tests for dissemination over realized topologies."""

from __future__ import annotations

import pytest

from repro.app.broadcast import BroadcastResult, flood, gossip_broadcast
from repro.core import Runtime
from repro.errors import ConfigurationError
from repro.experiments.topologies import ring_of_rings, star_of_cliques


@pytest.fixture(scope="module")
def mongo():
    deployment = Runtime(star_of_cliques(3, 10, 6), seed=19).deploy()
    assert deployment.run_until_converged(80).converged
    return deployment


@pytest.fixture(scope="module")
def rings():
    deployment = Runtime(ring_of_rings(4, 12), seed=20).deploy()
    assert deployment.run_until_converged(80).converged
    return deployment


class TestFlood:
    def test_full_coverage_from_any_origin(self, mongo):
        population = mongo.network.alive_count()
        for origin in (0, 17, 35):
            result = flood(mongo, origin)
            assert result.coverage(population) == 1.0

    def test_per_round_monotone(self, mongo):
        result = flood(mongo, 0)
        assert result.per_round == sorted(result.per_round)

    def test_latency_bounded_by_diameter(self, rings):
        """Flood rounds == eccentricity of the origin <= diameter."""
        import networkx as nx

        from repro.analysis import realized_graph

        graph = realized_graph(rings)
        diameter = nx.diameter(graph)
        result = flood(rings, 0)
        # The last productive round is when the farthest node was reached.
        productive = sum(
            1
            for before, after in zip([1] + result.per_round, result.per_round)
            if after > before
        )
        assert productive <= diameter

    def test_dead_origin_rejected(self, mongo):
        victim = mongo.network.alive_ids()[-1]
        mongo.network.kill(victim)
        try:
            with pytest.raises(ConfigurationError):
                flood(mongo, victim)
        finally:
            mongo.network.revive(victim)

    def test_message_cost_counts_every_forward(self, mongo):
        result = flood(mongo, 0)
        assert result.messages >= len(result.informed) - 1


class TestGossipBroadcast:
    def test_reaches_everyone_with_uo2(self, mongo):
        population = mongo.network.alive_count()
        result = gossip_broadcast(mongo, 0, fanout=3, seed=1)
        assert result.coverage(population) == 1.0

    def test_fanout_validation(self, mongo):
        with pytest.raises(ConfigurationError):
            gossip_broadcast(mongo, 0, fanout=0)

    def test_deterministic_per_seed(self, mongo):
        first = gossip_broadcast(mongo, 0, fanout=2, seed=9)
        second = gossip_broadcast(mongo, 0, fanout=2, seed=9)
        assert first.per_round == second.per_round
        assert first.messages == second.messages

    def test_higher_fanout_is_faster(self, rings):
        slow = gossip_broadcast(rings, 0, fanout=1, seed=3)
        fast = gossip_broadcast(rings, 0, fanout=4, seed=3)
        population = rings.network.alive_count()
        if slow.coverage(population) == fast.coverage(population) == 1.0:
            assert fast.rounds <= slow.rounds

    def test_flood_cheaper_in_rounds_gossip_cheaper_in_messages(self, rings):
        """The classic trade-off the QoS layer would arbitrate."""
        population = rings.network.alive_count()
        flooded = flood(rings, 0, include_uo2=True)
        gossiped = gossip_broadcast(rings, 0, fanout=2, seed=4)
        assert flooded.coverage(population) == 1.0
        # Flood never loses on latency; per-round gossip messages are lower.
        if gossiped.coverage(population) == 1.0:
            assert flooded.rounds <= gossiped.rounds
            assert (
                gossiped.messages / max(1, gossiped.rounds)
                <= flooded.messages / max(1, flooded.rounds) * 2
            )


class TestBroadcastResult:
    def test_coverage_empty_population(self):
        result = BroadcastResult(origin=0, informed={0})
        assert result.coverage(0) == 1.0
        assert result.rounds == 0
