"""Tests for component-scoped push-sum aggregation."""

from __future__ import annotations

import pytest

from repro.app.aggregation import (
    LAYER_AGGREGATION,
    attach_push_sum,
    component_average,
    estimates,
)
from repro.core import Runtime
from repro.errors import ConfigurationError
from repro.experiments.topologies import star_of_cliques


@pytest.fixture
def deployment():
    dep = Runtime(star_of_cliques(2, 12, 6), seed=17).deploy()
    assert dep.run_until_converged(80).converged
    return dep


class TestPushSum:
    def test_average_of_node_ids(self, deployment):
        members = deployment.role_map.member_ids("shard0")
        truth = sum(members) / len(members)
        average, rounds = component_average(
            deployment, "shard0", value_of=float, rounds=40
        )
        # The stop criterion is a 1e-3 relative estimate spread, so the
        # returned mean matches the truth to the same order.
        assert average == pytest.approx(truth, rel=1e-3)
        assert rounds < 40

    def test_estimates_agree_after_convergence(self, deployment):
        component_average(deployment, "shard1", value_of=lambda n: 10.0, rounds=40)
        values = list(estimates(deployment, "shard1").values())
        assert all(value == pytest.approx(10.0, rel=1e-3) for value in values)

    def test_mass_conservation(self, deployment):
        """The push-sum invariant: total (sum, weight) mass never changes."""
        members = deployment.role_map.member_ids("router")
        attach_push_sum(deployment, "router", value_of=float)
        total_before = sum(
            deployment.network.node(m).protocol(LAYER_AGGREGATION).sum
            for m in members
        )
        deployment.run(10)
        total_after = sum(
            deployment.network.node(m).protocol(LAYER_AGGREGATION).sum
            for m in members
        )
        weight_after = sum(
            deployment.network.node(m).protocol(LAYER_AGGREGATION).weight
            for m in members
        )
        assert total_after == pytest.approx(total_before, rel=1e-9)
        assert weight_after == pytest.approx(len(members), rel=1e-9)

    def test_scoped_to_component(self, deployment):
        attach_push_sum(deployment, "shard0", value_of=lambda n: 1.0)
        deployment.run(5)
        # No other component's nodes grew an aggregation layer.
        for node_id in deployment.role_map.member_ids("shard1"):
            assert not deployment.network.node(node_id).has_protocol(
                LAYER_AGGREGATION
            )

    def test_unknown_component_rejected(self, deployment):
        with pytest.raises(ConfigurationError):
            attach_push_sum(deployment, "ghost", value_of=float)

    def test_bandwidth_accounted(self, deployment):
        attach_push_sum(deployment, "shard0", value_of=float)
        deployment.run(3)
        assert deployment.transport.total_bytes(LAYER_AGGREGATION) > 0
