"""Greedy routability of every shape's metric.

Each shape's metric doubles as a routing gradient: from any node, greedily
stepping to the realized neighbour closest to the destination must reach it
(possibly via the flooding fallback only for the gradient-free random
graph). This suite converges one single-component deployment per shape and
routes between sampled pairs.
"""

from __future__ import annotations

import random

import pytest

from repro.app import Router
from repro.core import Runtime
from repro.dsl import TopologyBuilder

#: (shape, size, shape kwargs, max hops expected between any pair)
SHAPE_CASES = [
    ("ring", 24, {}, 12),
    ("line", 24, {}, 23),
    ("kring", 24, {"k": 2}, 6),
    ("star", 16, {}, 2),
    ("wheel", 16, {}, 2),
    ("clique", 12, {}, 1),
    ("grid", 16, {}, 6),
    ("torus", 16, {}, 4),
    ("tree", 15, {}, 6),
    ("hypercube", 16, {}, 4),
    ("random", 16, {"min_degree": 3}, 15),
]


@pytest.mark.parametrize(
    "shape,size,kwargs,hop_bound",
    SHAPE_CASES,
    ids=[case[0] for case in SHAPE_CASES],
)
def test_greedy_routing_reaches_all_sampled_pairs(shape, size, kwargs, hop_bound):
    builder = TopologyBuilder("RouteTest")
    builder.component("only", shape, size=size, **kwargs)
    deployment = Runtime(builder.nodes(size).build(), seed=103).deploy()
    report = deployment.run_until_converged(max_rounds=100)
    assert report.converged, f"{shape}: {report.rounds}"

    router = Router(deployment)
    members = deployment.role_map.member_ids("only")
    rng = random.Random(7)
    pairs = [rng.sample(members, 2) for _ in range(15)]
    for source, destination in pairs:
        route = router.route(source, destination)
        assert route.path[-1] == destination
        assert route.hops <= hop_bound, (
            f"{shape}: {route.hops} hops {source}->{destination} "
            f"(bound {hop_bound}): {route.path}"
        )


def test_greedy_matches_shortest_path_on_torus():
    """On the torus, greedy routing is optimal (Manhattan geodesics)."""
    import networkx as nx

    from repro.analysis import realized_graph

    builder = TopologyBuilder("TorusOpt")
    builder.component("only", "torus", size=16)
    deployment = Runtime(builder.nodes(16).build(), seed=104).deploy()
    assert deployment.run_until_converged(100).converged
    router = Router(deployment)
    graph = realized_graph(deployment, include_links=False)
    members = deployment.role_map.member_ids("only")
    for source in members[:4]:
        lengths = nx.single_source_shortest_path_length(graph, source)
        for destination in members:
            if destination == source:
                continue
            route = router.route(source, destination)
            assert route.hops == lengths[destination]
