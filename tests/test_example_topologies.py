"""The shipped .topo files must validate, deploy and converge."""

from __future__ import annotations

import pathlib

import pytest

from repro import Runtime, compile_source

TOPOLOGY_DIR = pathlib.Path(__file__).parent.parent / "examples" / "topologies"
TOPOLOGY_FILES = sorted(TOPOLOGY_DIR.glob("*.topo"))


def test_topology_files_exist():
    assert len(TOPOLOGY_FILES) >= 3


@pytest.mark.parametrize(
    "path", TOPOLOGY_FILES, ids=[path.stem for path in TOPOLOGY_FILES]
)
def test_topo_file_compiles(path):
    assembly = compile_source(path.read_text(encoding="utf-8"))
    assert assembly.total_nodes is not None
    assert assembly.components


@pytest.mark.parametrize(
    "path", TOPOLOGY_FILES, ids=[path.stem for path in TOPOLOGY_FILES]
)
def test_topo_file_converges(path):
    assembly = compile_source(path.read_text(encoding="utf-8"))
    deployment = Runtime(assembly, seed=101).deploy()
    report = deployment.run_until_converged(max_rounds=120)
    assert report.converged, f"{path.name}: {report.rounds}"


def test_cli_runs_a_shipped_file(capsys):
    from repro.cli import main

    target = str(TOPOLOGY_FILES[0])
    assert main(["validate", target]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
